package server

import (
	"log/slog"
	"net/http"
	netpprof "net/http/pprof"
	"time"

	"locsched/internal/experiment"
	"locsched/internal/obs"
)

// serverObs bundles one server's observability state: its metrics
// registry (served at /metricsz), the structured logger behind access
// and span records, and the pre-registered latency histograms on the
// request path. Every instrument lives on the per-server registry, so
// embedded and test servers never share series.
type serverObs struct {
	// reg is the server's metrics registry, rendered at /metricsz.
	reg *obs.Registry
	// logger receives access lines (Info) and trace spans (Debug).
	logger *slog.Logger
	// requestSeconds times every HTTP request end to end.
	requestSeconds *obs.Histogram
	// queueWaitSeconds times admitted jobs from enqueue to dequeue.
	queueWaitSeconds *obs.Histogram
	// coalesceWaitSeconds times coalesced followers from join to result.
	coalesceWaitSeconds *obs.Histogram
	// executionSeconds times worker-pool job executions.
	executionSeconds *obs.Histogram
	// responses counts served responses by result class (the
	// X-Locsched-Result values), pre-registered so all classes render
	// from the first scrape.
	responses map[string]*obs.Counter
}

// newServerObs builds the observability state. A nil logger selects the
// discard logger so embedded and test servers stay silent by default.
func newServerObs(logger *slog.Logger) *serverObs {
	if logger == nil {
		logger = obs.Discard()
	}
	reg := obs.NewRegistry()
	o := &serverObs{
		reg:    reg,
		logger: logger,
		requestSeconds: reg.Histogram("locsched_server_request_seconds",
			"End-to-end HTTP request latency.", nil),
		queueWaitSeconds: reg.Histogram("locsched_server_queue_wait_seconds",
			"Admitted job wait from enqueue to worker dequeue.", nil),
		coalesceWaitSeconds: reg.Histogram("locsched_server_coalesce_wait_seconds",
			"Coalesced follower wait from join to shared result.", nil),
		executionSeconds: reg.Histogram("locsched_server_execution_seconds",
			"Worker-pool job execution time.", nil),
		responses: make(map[string]*obs.Counter),
	}
	for _, class := range []string{"cold", "cached", "disk", "coalesced", "peer"} {
		o.responses[class] = reg.Counter("locsched_server_responses_total",
			"Served responses by result class (X-Locsched-Result).",
			obs.L("class", class))
	}
	return o
}

// countResponse records one served response's result class.
func (o *serverObs) countResponse(class string) {
	c, ok := o.responses[class]
	if !ok {
		c = o.reg.Counter("locsched_server_responses_total",
			"Served responses by result class (X-Locsched-Result).",
			obs.L("class", class))
	}
	c.Inc()
}

// registerGauges publishes the queue/coalescer/cache gauges that are
// sampled from their owners rather than counted, plus the experiment
// layer's process-wide cache counters. Called once from New, after the
// sampled structures exist.
func (s *Server) registerGauges() {
	r := s.obs.reg
	r.GaugeFunc("locsched_server_queue_depth",
		"Jobs waiting in the bounded queue now.",
		func() float64 { return float64(len(s.jobs)) })
	r.GaugeFunc("locsched_server_queue_capacity",
		"Configured job queue bound.",
		func() float64 { return float64(cap(s.jobs)) })
	r.GaugeFunc("locsched_server_inflight_keys",
		"Distinct keys currently executing or queued (coalescer pending set).",
		func() float64 { return float64(s.flight.pending()) })
	r.GaugeFunc("locsched_cache_memory_entries",
		"Result cache entry count.",
		func() float64 { return float64(s.cache.len()) })
	r.GaugeFunc("locsched_cache_memory_bytes",
		"Result cache stored body bytes.",
		func() float64 { return float64(s.cache.size()) })
	experiment.RegisterMetrics(r)
}

// Metrics returns the server's metrics registry (the /metricsz source) —
// for tests and embedders that want to read or extend the series.
func (s *Server) Metrics() *obs.Registry { return s.obs.reg }

// mountObsEndpoints registers /metricsz and (when enabled) the
// net/http/pprof handlers on the server mux.
func (s *Server) mountObsEndpoints() {
	s.mux.Handle("/metricsz", s.obs.reg.Handler())
	if s.cfg.Pprof {
		s.mux.HandleFunc("/debug/pprof/", netpprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	}
}

// statusWriter captures the response status, body size, and result
// class for the access log while delegating to the real writer.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// WriteHeader records the status before delegating.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Write accumulates the body size before delegating.
func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// withObs is the serving middleware: it adopts a valid inbound
// X-Locsched-Trace-Id (how one request stays correlatable across fleet
// replicas) or mints a fresh id, echoes it on the response, carries the
// trace on the request context for span emission downstream, times the
// request into the latency histogram, and writes one structured access
// line. Response bodies are untouched — observability must never change
// served bytes.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(obs.TraceHeader)
		if !obs.ValidTraceID(id) {
			id = obs.NewTraceID()
		}
		tr := obs.NewTrace(id, s.obs.logger)
		w.Header().Set(obs.TraceHeader, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(obs.Into(r.Context(), tr)))
		d := time.Since(start)
		s.obs.requestSeconds.Observe(d.Seconds())
		s.obs.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("trace_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.String("class", sw.Header().Get(resultHeader)),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("dur", d))
	})
}

package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"locsched/internal/experiment"
	"locsched/internal/mpsoc"
	"locsched/internal/prog"
	"locsched/internal/taskgraph"
	"locsched/internal/workload"
)

// Job is one admitted unit of work: a content-addressed key plus the
// closure that computes the canonical response bytes. Everything about a
// request that can change its result is folded into Key, so the queue,
// coalescer, and result cache never need to look inside Run.
type Job struct {
	// Key is the content-addressed request identity: endpoint, workload
	// graph/layout fingerprints, and canonical config digest.
	Key string
	// Deadline optionally lowers the server's request timeout for this
	// job's waiters; 0 means the server default. It can never raise it.
	Deadline time.Duration
	// Run computes the response bytes. It is executed at most once per
	// pending Key (singleflight) on the worker pool.
	Run func() ([]byte, error)
}

// Planner turns a raw endpoint request body into a Job. Plan errors are
// client errors (400); Run errors are execution failures (500). The
// production planner is experimentPlanner; tests substitute scripted
// planners to drive the queue/coalescer/cache machinery directly.
type Planner interface {
	// Plan parses and resolves one request for the named endpoint
	// ("run", "figure", or "analysis").
	Plan(endpoint string, body []byte) (*Job, error)
}

// WorkloadSpec names the workload of a request: exactly one of the three
// fields must be set.
type WorkloadSpec struct {
	// App runs one Table 1 application in isolation (a fig6 cell), by
	// name (see workload.Names).
	App string `json:"app,omitempty"`
	// Mix runs a generated |T|-task concurrent mix (a fig7/fig7xl-style
	// cell) built by cycling the Table 1 suite.
	Mix int `json:"mix,omitempty"`
	// TaskSet is an inline JSON task-set description in the LoadApps
	// format (see internal/workload); several tasks are merged into one
	// concurrent EPG.
	TaskSet json.RawMessage `json:"task_set,omitempty"`
	// Scale overrides the workload scale factor for app and mix
	// workloads (0 = server default; rejected with task_set, whose
	// iteration spaces are explicit).
	Scale int `json:"scale,omitempty"`
}

// ConfigSpec is the per-request machine/policy override set; zero fields
// keep the server's base configuration. It deliberately mirrors the CLI
// flags rather than exposing every experiment.Config knob.
type ConfigSpec struct {
	// Cores overrides the core count.
	Cores int `json:"cores,omitempty"`
	// CacheKB overrides the per-core L1 size, in KiB.
	CacheKB int64 `json:"cache_kb,omitempty"`
	// Assoc overrides the L1 associativity.
	Assoc int `json:"assoc,omitempty"`
	// MissPenalty overrides the off-chip penalty, in cycles.
	MissPenalty int64 `json:"miss_penalty,omitempty"`
	// Quantum overrides the RRS/ARR time slice, in cycles.
	Quantum int64 `json:"quantum,omitempty"`
	// Seed overrides the RS randomization seed.
	Seed int64 `json:"seed,omitempty"`
	// Affinity overrides ARR's affinity window (nil = base).
	Affinity *int `json:"affinity,omitempty"`
	// QBatch overrides ARR's quanta per warm resume (nil = base).
	QBatch *int `json:"qbatch,omitempty"`
	// AffinityDecay overrides ARR's staleness bound (nil = base).
	AffinityDecay *int64 `json:"adecay,omitempty"`
	// SpeedClasses sets the per-core speed-class mix, as a comma-separated
	// cycle-multiplier list cycled across cores ("" = uniform speed; see
	// mpsoc.Machine.SpeedClasses). Magnitudes are capped by
	// mpsoc.Machine.Validate.
	SpeedClasses string `json:"speed_classes,omitempty"`
	// Topology sets the interconnect shape: "bus" (default), "mesh", or
	// "ring".
	Topology string `json:"topology,omitempty"`
	// HopPenalty sets the extra miss cost per interconnect hop, in cycles
	// (nil = 0; capped by mpsoc.MaxHopPenalty).
	HopPenalty *int64 `json:"hop_penalty,omitempty"`
}

// RunRequest is the /v1/run body: one workload under one policy.
type RunRequest struct {
	// Workload selects what to simulate.
	Workload WorkloadSpec `json:"workload"`
	// Policy names the scheduling strategy (rs, rrs, arr, sjf, cpl, ls, lsm).
	Policy string `json:"policy"`
	// Config optionally overrides machine/policy parameters.
	Config ConfigSpec `json:"config,omitempty"`
	// DeadlineMillis optionally lowers the request deadline.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// FigureRequest is the /v1/figure body: a whole reproduced figure. The
// response is byte-identical to `locsched -json <figure>` output.
type FigureRequest struct {
	// Figure selects the evaluation: "fig6", "fig7", or "fig7xl".
	Figure string `json:"figure"`
	// Policies selects the columns (empty = the paper's four).
	Policies []string `json:"policies,omitempty"`
	// XLPoints optionally overrides the fig7xl ladder.
	XLPoints []XLPointSpec `json:"xl_points,omitempty"`
	// Scale overrides the workload scale factor (0 = server default).
	Scale int `json:"scale,omitempty"`
	// Config optionally overrides machine/policy parameters.
	Config ConfigSpec `json:"config,omitempty"`
	// DeadlineMillis optionally lowers the request deadline.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// XLPointSpec is one (cores, tasks) rung of a requested fig7xl ladder.
type XLPointSpec struct {
	// Cores is the machine's core count at this rung.
	Cores int `json:"cores"`
	// Tasks is the generated mix size at this rung.
	Tasks int `json:"tasks"`
}

// AnalysisRequest is the /v1/analysis body: scheduling analysis only
// (sharing matrix + the Figure 3 greedy), no simulation.
type AnalysisRequest struct {
	// Workload selects what to analyze.
	Workload WorkloadSpec `json:"workload"`
	// Cores is the core count to schedule for (0 = server base).
	Cores int `json:"cores,omitempty"`
	// DeadlineMillis optionally lowers the request deadline.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// RunResponse is the /v1/run response body.
type RunResponse struct {
	// Key is the request's content-addressed identity (useful for
	// correlating with /statsz and for client-side caching).
	Key string `json:"key"`
	// Workload is the resolved workload label.
	Workload string `json:"workload"`
	// Policy is the resolved policy name.
	Policy string `json:"policy"`
	// Cycles is the simulated makespan in cycles.
	Cycles int64 `json:"cycles"`
	// Millis is the simulated makespan in milliseconds.
	Millis float64 `json:"millis"`
	// Hits is the aggregate L1 hit count.
	Hits int64 `json:"hits"`
	// Misses is the aggregate L1 miss count.
	Misses int64 `json:"misses"`
	// MissRate is Misses over total accesses.
	MissRate float64 `json:"miss_rate"`
	// Conflicts counts classified conflict misses.
	Conflicts int64 `json:"conflict_misses"`
	// Preemptions counts forced preemptions.
	Preemptions int64 `json:"preemptions"`
	// AffineResumes counts resumed segments dispatched back to the
	// process's previous core.
	AffineResumes int64 `json:"affine_resumes"`
	// Migrations counts resumed segments dispatched to a different core.
	Migrations int64 `json:"migrations"`
	// Relaid counts arrays moved by the LSM mapping phase.
	Relaid int `json:"relaid_arrays"`
}

// AnalysisResponse is the /v1/analysis response body.
type AnalysisResponse struct {
	// Key is the request's content-addressed identity.
	Key string `json:"key"`
	// Workload is the resolved workload label.
	Workload string `json:"workload"`
	// Cores is the scheduled core count.
	Cores int `json:"cores"`
	// Processes is the total number of scheduled processes.
	Processes int `json:"processes"`
	// PerCore lists the static LS order per core, as process IDs.
	PerCore [][]string `json:"per_core"`
}

// experimentPlanner is the production Planner: it resolves workloads
// through the workload builders (including the LoadApps JSON path),
// derives content-addressed keys from the experiment layer's
// fingerprints, and executes through the shared experiment caches.
//
// Resolution is memoized per request identity (app/mix name + scale, or
// the hash of an inline task-set's raw bytes): the hot serving path —
// repeats that the result cache or coalescer will absorb — must not
// rebuild and re-hash workload graphs on every request just to derive
// the key. The memo is bounded and cleared wholesale when full.
type experimentPlanner struct {
	base       experiment.Config
	expWorkers int

	mu        sync.Mutex
	workloads map[string]*resolvedWorkload
	figures   map[string]string // figure request identity → workload hash
	flight    resolveFlight     // dedups concurrent cold resolutions
}

// resolvedWorkload is one memoized workload resolution: the canonical
// objects plus the content key (computed once; the packing alignment is
// the base block size, which no request override can change).
type resolvedWorkload struct {
	name   string
	g      *taskgraph.Graph
	arrays []*prog.Array
	ck     string
}

// maxPlannerMemo bounds the planner's resolution memos.
const maxPlannerMemo = 256

// Service limits: the daemon is long-lived, so a single request must
// not be able to ask for a workload or machine large enough to exhaust
// memory (the one-shot CLI could afford unbounded flags; a server
// cannot). The bounds sit comfortably above the largest evaluated
// scenario (XLLadder(1024): 1024 cores, 256 tasks).
const (
	// maxReqMix bounds generated-mix task counts per request.
	maxReqMix = 1024
	// maxReqCores bounds the simulated core count per request.
	maxReqCores = 4096
	// maxReqScale bounds the workload scale factor per request.
	maxReqScale = 64
	// maxReqCacheKB bounds the per-core L1 size override (KiB).
	maxReqCacheKB = 1 << 16
	// maxReqAssoc bounds the associativity override.
	maxReqAssoc = 1024
	// maxReqSimBytes bounds the *product* cores × per-core cache size:
	// the simulator allocates line state proportional to it, so the
	// per-dimension caps alone would still admit a request whose
	// combination exhausts memory (4096 cores × 64 MiB caches). It is
	// enforced on the resolved machine config and on every fig7xl
	// ladder point (which overrides the core count per point).
	maxReqSimBytes = 1 << 30
	// maxReqXLPoints bounds a requested fig7xl ladder's length: each
	// point costs plan-time mix construction, so the count must be
	// capped like every other request magnitude.
	maxReqXLPoints = 16
)

// resolveFlight is a keyed singleflight for plan-time resolution:
// concurrent cold requests for the same identity build graphs and hash
// content once, not once per request (resolution runs on handler
// goroutines, ahead of the bounded job queue, so it must not multiply).
type resolveFlight struct {
	mu sync.Mutex
	m  map[string]*resolveCall
}

// resolveCall is one pending resolution.
type resolveCall struct {
	done chan struct{}
	val  any
	err  error
}

// do returns the memoized-or-computed value for key, computing at most
// once concurrently per key. Results are not retained here — the caller
// owns memoization — so a failed compute is retried by the next caller.
// A panicking compute is converted to an error and the entry is cleaned
// up either way: a wedged key (done never closed, entry never deleted)
// would block every future request for that identity forever.
func (f *resolveFlight) do(key string, compute func() (any, error)) (any, error) {
	f.mu.Lock()
	if f.m == nil {
		f.m = make(map[string]*resolveCall)
	}
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &resolveCall{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.val, c.err = nil, fmt.Errorf("server: workload resolution panicked: %v", r)
			}
			f.mu.Lock()
			delete(f.m, key)
			f.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = compute()
	}()
	return c.val, c.err
}

// newExperimentPlanner builds the production planner from the server
// config: experiment defaults, the daemon's scale override, and
// intra-request worker bound.
func newExperimentPlanner(cfg Config) *experimentPlanner {
	base := experiment.DefaultConfig()
	if cfg.Scale > 0 {
		base.Workload.Scale = cfg.Scale
	}
	workers := cfg.ExpWorkers
	if workers == 0 {
		workers = 1
	}
	base.Workers = workers
	base.SimWorkers = cfg.SimWorkers
	return &experimentPlanner{
		base:       base,
		expWorkers: workers,
		workloads:  make(map[string]*resolvedWorkload),
		figures:    make(map[string]string),
	}
}

// Plan implements Planner.
func (p *experimentPlanner) Plan(endpoint string, body []byte) (*Job, error) {
	switch endpoint {
	case "run":
		return p.planRun(body)
	case "figure":
		return p.planFigure(body)
	case "analysis":
		return p.planAnalysis(body)
	}
	return nil, fmt.Errorf("server: unknown endpoint %q", endpoint)
}

// decodeStrict parses JSON rejecting unknown fields and trailing data.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: parsing request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("server: trailing data after request body")
	}
	return nil
}

// resolveConfig applies a request's overrides to the base configuration
// and validates the result.
func (p *experimentPlanner) resolveConfig(spec ConfigSpec, scale int) (experiment.Config, error) {
	cfg := p.base
	if spec.Cores < 0 || spec.CacheKB < 0 || spec.Assoc < 0 ||
		spec.MissPenalty < 0 || spec.Quantum < 0 || spec.Seed < 0 {
		return cfg, fmt.Errorf("server: config overrides must be non-negative (0 = keep the base value)")
	}
	if spec.Cores > maxReqCores || spec.CacheKB > maxReqCacheKB || spec.Assoc > maxReqAssoc {
		return cfg, fmt.Errorf("server: config overrides exceed service limits (cores ≤ %d, cache_kb ≤ %d, assoc ≤ %d)",
			maxReqCores, maxReqCacheKB, maxReqAssoc)
	}
	if scale < 0 || scale > maxReqScale {
		return cfg, fmt.Errorf("server: scale %d out of range [0, %d]", scale, maxReqScale)
	}
	if scale > 0 {
		cfg.Workload.Scale = scale
	}
	if spec.Cores > 0 {
		cfg.Machine.Cores = spec.Cores
	}
	if spec.CacheKB > 0 {
		cfg.Machine.Cache.Size = spec.CacheKB << 10
	}
	if spec.Assoc > 0 {
		cfg.Machine.Cache.Assoc = spec.Assoc
	}
	if spec.MissPenalty > 0 {
		cfg.Machine.MissPenalty = spec.MissPenalty
	}
	if spec.Quantum > 0 {
		cfg.Quantum = spec.Quantum
	}
	if spec.Seed > 0 {
		cfg.Seed = spec.Seed
	}
	if spec.Affinity != nil {
		cfg.Affinity = *spec.Affinity
	}
	if spec.QBatch != nil {
		cfg.QBatch = *spec.QBatch
	}
	if spec.AffinityDecay != nil {
		cfg.AffinityDecay = *spec.AffinityDecay
	}
	// Machine-model overrides: parsed/capped by mpsoc (ParseTopology and,
	// via cfg.Validate below, Machine.Validate's speed-class and
	// hop-penalty bounds).
	if spec.SpeedClasses != "" {
		cfg.Machine.Machine.SpeedClasses = spec.SpeedClasses
	}
	if spec.Topology != "" {
		topo, err := mpsoc.ParseTopology(spec.Topology)
		if err != nil {
			return cfg, err
		}
		cfg.Machine.Machine.Topology = topo
	}
	if spec.HopPenalty != nil {
		cfg.Machine.Machine.HopPenalty = *spec.HopPenalty
	}
	cfg.Align = cfg.Machine.Cache.BlockSize
	cfg.Workers = p.expWorkers
	if total := int64(cfg.Machine.Cores) * cfg.Machine.Cache.Size; total > maxReqSimBytes {
		return cfg, fmt.Errorf("server: cores × cache size = %d bytes exceeds the service limit %d",
			total, int64(maxReqSimBytes))
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// resolveWorkload returns the memoized resolution of a WorkloadSpec:
// the canonical (name, graph, arrays) triple plus its content key. A
// memo hit — the steady state for every repeated request — costs one
// map lookup; only first contact with a workload identity builds graphs
// and hashes content. Inline task sets are memoized by the hash of
// their raw bytes, so re-sending identical JSON text never rebuilds
// (textually distinct but content-equal task sets still converge on the
// same content key, just through a fresh resolution).
func (p *experimentPlanner) resolveWorkload(ws WorkloadSpec) (*resolvedWorkload, error) {
	set := 0
	if ws.App != "" {
		set++
	}
	if ws.Mix > 0 {
		set++
	}
	if len(ws.TaskSet) > 0 {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("server: workload must set exactly one of app, mix, task_set")
	}
	if ws.Mix > maxReqMix {
		return nil, fmt.Errorf("server: mix %d exceeds the service limit %d", ws.Mix, maxReqMix)
	}
	if ws.Scale < 0 || ws.Scale > maxReqScale {
		return nil, fmt.Errorf("server: workload scale %d out of range [0, %d]", ws.Scale, maxReqScale)
	}
	if len(ws.TaskSet) > 0 && ws.Scale != 0 {
		// An inline task set states its iteration spaces explicitly; a
		// scale would be silently ignored (and would needlessly fork the
		// request key), so reject it instead.
		return nil, fmt.Errorf("server: scale does not apply to task_set workloads")
	}
	params := p.base.Workload
	if ws.Scale > 0 {
		params.Scale = ws.Scale
	}

	var memoKey string
	switch {
	case ws.App != "":
		memoKey = fmt.Sprintf("app|%s|s%d", ws.App, params.Scale)
	case ws.Mix > 0:
		memoKey = fmt.Sprintf("mix|%d|s%d", ws.Mix, params.Scale)
	default:
		sum := sha256.Sum256(ws.TaskSet)
		memoKey = fmt.Sprintf("set|%s|s%d", hex.EncodeToString(sum[:]), params.Scale)
	}
	p.mu.Lock()
	rw, ok := p.workloads[memoKey]
	p.mu.Unlock()
	if ok {
		return rw, nil
	}

	v, err := p.flight.do(memoKey, func() (any, error) {
		rw := &resolvedWorkload{}
		switch {
		case ws.App != "":
			app, err := workload.Build(ws.App, 0, params)
			if err != nil {
				return nil, err
			}
			rw.name, rw.g, rw.arrays = app.Name, app.Graph, app.Arrays
		case ws.Mix > 0:
			apps, err := workload.BuildMany(ws.Mix, params)
			if err != nil {
				return nil, err
			}
			g, arrays, err := experiment.CombineApps(apps)
			if err != nil {
				return nil, err
			}
			rw.name, rw.g, rw.arrays = fmt.Sprintf("|T|=%d", ws.Mix), g, arrays
		default:
			apps, err := workload.FromJSON(bytes.NewReader(ws.TaskSet))
			if err != nil {
				return nil, err
			}
			if len(apps) == 1 {
				rw.name, rw.g, rw.arrays = apps[0].Name, apps[0].Graph, apps[0].Arrays
			} else {
				g, arrays, err := experiment.CombineApps(apps)
				if err != nil {
					return nil, err
				}
				rw.name, rw.g, rw.arrays = fmt.Sprintf("|T|=%d", len(apps)), g, arrays
			}
		}
		// The content key's alignment component is the base block size:
		// no ConfigSpec override can change it, so one key per workload
		// holds for every request configuration.
		ck, err := experiment.ContentKey(rw.g, rw.arrays, p.base.Align)
		if err != nil {
			return nil, err
		}
		rw.ck = ck

		p.mu.Lock()
		if prior, ok := p.workloads[memoKey]; ok {
			rw = prior
		} else {
			if len(p.workloads) >= maxPlannerMemo {
				p.workloads = make(map[string]*resolvedWorkload)
			}
			p.workloads[memoKey] = rw
		}
		p.mu.Unlock()
		return rw, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*resolvedWorkload), nil
}

// deadlineOf converts a request's deadline_ms to a duration.
func deadlineOf(millis int64) (time.Duration, error) {
	if millis < 0 {
		return 0, fmt.Errorf("server: deadline_ms %d must be non-negative", millis)
	}
	return time.Duration(millis) * time.Millisecond, nil
}

// planRun resolves a /v1/run request.
func (p *experimentPlanner) planRun(body []byte) (*Job, error) {
	var req RunRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	policy, err := experiment.ParsePolicy(req.Policy)
	if err != nil {
		return nil, err
	}
	cfg, err := p.resolveConfig(req.Config, req.Workload.Scale)
	if err != nil {
		return nil, err
	}
	rw, err := p.resolveWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	deadline, err := deadlineOf(req.DeadlineMillis)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("run|%s|%s|%s", rw.ck, policy, experiment.ConfigDigest(cfg))
	return &Job{
		Key:      key,
		Deadline: deadline,
		Run: func() ([]byte, error) {
			res, err := experiment.RunGraph(rw.name, rw.g, rw.arrays, policy, cfg)
			if err != nil {
				return nil, err
			}
			return marshalBody(RunResponse{
				Key:           key,
				Workload:      res.Workload,
				Policy:        string(res.Policy),
				Cycles:        res.Cycles,
				Millis:        res.Seconds * 1e3,
				Hits:          res.Hits,
				Misses:        res.Misses,
				MissRate:      res.MissRate(),
				Conflicts:     res.Conflicts,
				Preemptions:   res.Preemptions,
				AffineResumes: res.AffineResumes,
				Migrations:    res.Migrations,
				Relaid:        res.Relaid,
			})
		},
	}, nil
}

// planFigure resolves a /v1/figure request. The response bytes are
// produced by experiment.WriteJSON, so they are byte-identical to the
// CLI's `-json` output for the same figure and configuration.
func (p *experimentPlanner) planFigure(body []byte) (*Job, error) {
	var req FigureRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	var policies []experiment.Policy
	for _, name := range req.Policies {
		pol, err := experiment.ParsePolicy(name)
		if err != nil {
			return nil, err
		}
		policies = append(policies, pol)
	}
	cfg, err := p.resolveConfig(req.Config, req.Scale)
	if err != nil {
		return nil, err
	}
	deadline, err := deadlineOf(req.DeadlineMillis)
	if err != nil {
		return nil, err
	}

	// The workload half of the key: the content fingerprints of every
	// constituent application graph (mixes are merged at run time from
	// these same graphs, so the constituent set is the identity). The
	// hash is memoized per (figure, scale, ladder) so repeats — which
	// the result cache will absorb — never rebuild the graphs.
	params := cfg.Workload
	var points []experiment.XLPoint
	switch req.Figure {
	case "fig6", "fig7":
		if len(req.XLPoints) > 0 {
			return nil, fmt.Errorf("server: xl_points only applies to fig7xl")
		}
	case "fig7xl":
		points = experiment.DefaultXLPoints()
		if len(req.XLPoints) > 0 {
			if len(req.XLPoints) > maxReqXLPoints {
				return nil, fmt.Errorf("server: %d xl points exceed the service limit %d", len(req.XLPoints), maxReqXLPoints)
			}
			points = points[:0]
			for _, sp := range req.XLPoints {
				if sp.Cores <= 0 || sp.Tasks <= 0 {
					return nil, fmt.Errorf("server: xl point %+v: cores and tasks must be positive", sp)
				}
				if sp.Cores > maxReqCores || sp.Tasks > maxReqMix {
					return nil, fmt.Errorf("server: xl point %+v exceeds service limits (cores ≤ %d, tasks ≤ %d)",
						sp, maxReqCores, maxReqMix)
				}
				points = append(points, experiment.XLPoint{Cores: sp.Cores, Tasks: sp.Tasks})
			}
		}
		// Figure7XL overrides the core count per point, so the resolved
		// config's cores × cache product check does not cover it.
		for _, pt := range points {
			if total := int64(pt.Cores) * cfg.Machine.Cache.Size; total > maxReqSimBytes {
				return nil, fmt.Errorf("server: xl point %v × cache size = %d bytes exceeds the service limit %d",
					pt, total, int64(maxReqSimBytes))
			}
		}
	default:
		return nil, fmt.Errorf("server: unknown figure %q (want fig6, fig7, or fig7xl)", req.Figure)
	}
	wlHash, err := p.figureWorkloadHash(req.Figure, params, points)
	if err != nil {
		return nil, err
	}
	run := func() (io.WriterTo, error) {
		switch req.Figure {
		case "fig6":
			return tableWriter(experiment.Figure6(cfg, policies))
		case "fig7":
			return tableWriter(experiment.Figure7(cfg, policies))
		default:
			return tableWriter(experiment.Figure7XL(cfg, points, policies))
		}
	}

	polNames := make([]string, len(policies))
	for i, pol := range policies {
		polNames[i] = string(pol)
	}
	key := fmt.Sprintf("figure|%s|%s|p=%s|%s",
		req.Figure, wlHash, strings.Join(polNames, ","), experiment.ConfigDigest(cfg))
	return &Job{
		Key:      key,
		Deadline: deadline,
		Run: func() ([]byte, error) {
			wt, err := run()
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if _, err := wt.WriteTo(&buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
	}, nil
}

// figureWorkloadHash returns the (memoized) hash over the content
// fingerprints of a figure's constituent application graphs. Concurrent
// cold requests for the same figure identity compute it once.
func (p *experimentPlanner) figureWorkloadHash(figure string, params workload.Params, points []experiment.XLPoint) (string, error) {
	memoKey := fmt.Sprintf("%s|s%d|%v", figure, params.Scale, points)
	p.mu.Lock()
	hash, ok := p.figures[memoKey]
	p.mu.Unlock()
	if ok {
		return hash, nil
	}
	v, err := p.flight.do("fig|"+memoKey, func() (any, error) {
		h := sha256.New()
		if figure == "fig7xl" {
			for _, pt := range points {
				apps, err := workload.BuildMany(pt.Tasks, params)
				if err != nil {
					return nil, err
				}
				fmt.Fprintf(h, "c%d:", pt.Cores)
				for _, a := range apps {
					io.WriteString(h, a.Graph.Fingerprint())
				}
			}
		} else {
			apps, err := workload.BuildAll(params)
			if err != nil {
				return nil, err
			}
			for _, a := range apps {
				io.WriteString(h, a.Graph.Fingerprint())
			}
		}
		hash := hex.EncodeToString(h.Sum(nil))
		p.mu.Lock()
		if len(p.figures) >= maxPlannerMemo {
			p.figures = make(map[string]string)
		}
		p.figures[memoKey] = hash
		p.mu.Unlock()
		return hash, nil
	})
	if err != nil {
		return "", err
	}
	return v.(string), nil
}

// tableWriter adapts a figure result to a deferred JSON serializer.
func tableWriter(t *experiment.Table, err error) (io.WriterTo, error) {
	if err != nil {
		return nil, err
	}
	return writerToFunc(func(w io.Writer) (int64, error) {
		cw := &countingWriter{w: w}
		if err := experiment.WriteJSON(cw, t); err != nil {
			return cw.n, err
		}
		return cw.n, nil
	}), nil
}

// writerToFunc adapts a function to io.WriterTo.
type writerToFunc func(io.Writer) (int64, error)

// WriteTo implements io.WriterTo.
func (f writerToFunc) WriteTo(w io.Writer) (int64, error) { return f(w) }

// countingWriter counts bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

// Write implements io.Writer.
func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// planAnalysis resolves a /v1/analysis request.
func (p *experimentPlanner) planAnalysis(body []byte) (*Job, error) {
	var req AnalysisRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	cores := req.Cores
	if cores == 0 {
		cores = p.base.Machine.Cores
	}
	if cores <= 0 || cores > maxReqCores {
		return nil, fmt.Errorf("server: cores %d out of range [1, %d]", req.Cores, maxReqCores)
	}
	rw, err := p.resolveWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	deadline, err := deadlineOf(req.DeadlineMillis)
	if err != nil {
		return nil, err
	}
	workers := p.expWorkers
	key := fmt.Sprintf("analysis|%s|cores=%d", rw.ck, cores)
	return &Job{
		Key:      key,
		Deadline: deadline,
		Run: func() ([]byte, error) {
			asg, err := experiment.AnalyzeLS(rw.g, rw.arrays, cores, workers)
			if err != nil {
				return nil, err
			}
			out := AnalysisResponse{Key: key, Workload: rw.name, Cores: asg.Cores(), Processes: asg.Len()}
			out.PerCore = make([][]string, len(asg.PerCore))
			for i, l := range asg.PerCore {
				ids := make([]string, len(l))
				for j, id := range l {
					ids[j] = id.String()
				}
				out.PerCore[i] = ids
			}
			return marshalBody(out)
		},
	}, nil
}

// marshalBody renders a response value as newline-terminated JSON. The
// serialization is deterministic (struct fields in declaration order, no
// maps), which is what makes cold, cached, and coalesced responses
// byte-identical by construction.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

package server

import (
	"context"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"locsched/internal/store"
)

// TestFleetDifferential3Replicas is the acceptance differential: the
// deterministic mixed stream served by a 3-replica in-process fleet
// (real planner, per-replica store volumes) must be byte-identical to
// the single-instance oracle, with an aggregate hit rate no worse and
// total executions strictly below 3× — one execution per distinct key
// fleet-wide, not one per replica.
func TestFleetDifferential3Replicas(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet differential runs real experiments")
	}
	srvCfg := DefaultConfig()
	srvCfg.Workers = 4
	srvCfg.DrainTimeout = 10 * time.Second
	srvCfg.StoreDir = t.TempDir()
	rep, err := RunFleetBench(srvCfg, LoadConfig{
		Concurrency: 4,
		Requests:    60,
		Scale:       1,
		Timeout:     60 * time.Second,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("%v\n%s", err, rep.Format())
	}
	// The contract Verify encodes, pinned explicitly: equality-grade
	// determinism and real scale-out savings.
	if rep.Mismatched != 0 {
		t.Fatalf("%d fleet bodies differ from the oracle", rep.Mismatched)
	}
	if rep.FleetExecutions != rep.Single.Stats.Executions {
		t.Fatalf("fleet executed %d jobs fleet-wide, want exactly the oracle's %d (in-order replay, synchronous replication)",
			rep.FleetExecutions, rep.Single.Stats.Executions)
	}
	if rep.PeerHits == 0 {
		t.Fatal("fleet run never served from a peer")
	}
}

// TestRunFleetBenchRejectsBadSetup: the bench guards its contract —
// fewer than two replicas is not a fleet, and an injected store cannot
// be shared across replicas (each needs its own volume under StoreDir).
func TestRunFleetBenchRejectsBadSetup(t *testing.T) {
	if _, err := RunFleetBench(DefaultConfig(), LoadConfig{}, 1); err == nil {
		t.Fatal("1-replica fleet bench accepted")
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg := DefaultConfig()
	cfg.Store = st
	if _, err := RunFleetBench(cfg, LoadConfig{}, 3); err == nil {
		t.Fatal("injected shared store accepted")
	}
}

// TestWarmManifestReplay: the persisted cache manifest round-trips into
// replayable requests, and a second lifetime warmed from it serves
// those requests from the recovered store — the bench's realistic warm
// set, end to end.
func TestWarmManifestReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.StoreDir = dir

	// Lifetime 1: compute three distinct keys, then shut down — Shutdown
	// persists the manifest with each entry's replay metadata.
	s1, err := New(cfg, &fakePlanner{})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	reqs := []string{`{"w":1}`, `{"w":2}`, `{"w":3}`}
	for _, body := range reqs {
		if resp, _ := postBody(t, ts1.URL+"/v1/run", body); resp.StatusCode != 200 {
			t.Fatalf("lifetime 1 request: %d", resp.StatusCode)
		}
	}
	manifestPath := s1.store.ManifestPath()
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(manifestPath); err != nil {
		t.Fatalf("manifest not persisted: %v", err)
	}

	replay, err := ManifestRequests(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(reqs) {
		t.Fatalf("manifest describes %d replayable requests, want %d", len(replay), len(reqs))
	}
	for _, r := range replay {
		if r.endpoint != "/v1/run" {
			t.Fatalf("replay endpoint %q, want /v1/run", r.endpoint)
		}
	}

	// Lifetime 2: a fresh daemon on the same store, warmed via the
	// manifest by the load generator itself. Every warm request must be
	// a disk hit — zero executions.
	p2 := &fakePlanner{}
	s2, err := New(cfg, p2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s2.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()
	rep, err := RunLoad(LoadConfig{
		BaseURL:      ts2.URL,
		Concurrency:  2,
		Requests:     len(reqs), // a short live stream after the warm phase
		Timeout:      10 * time.Second,
		WarmManifest: manifestPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("warm replay run had %d errors", rep.Errors)
	}
	if rep.Disk < len(reqs) {
		t.Fatalf("warm replay served %d disk hits, want at least %d (one per manifest entry)", rep.Disk, len(reqs))
	}
	if rep.Stats.DiskHits < int64(len(reqs)) {
		t.Fatalf("statsz disk hits %d, want at least %d", rep.Stats.DiskHits, len(reqs))
	}
}

package server

import (
	"container/list"
	"sync"
)

// resultCache is the bounded content-addressed response store: request
// key → the exact bytes the cold execution produced. Entries are evicted
// least-recently-used, under both an entry-count and a byte budget, so a
// stream of distinct keys cannot grow the daemon without bound. Bodies
// are stored and returned by reference and must be treated as immutable
// (handlers only ever write them to the wire).
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	entries    map[string]*list.Element
}

// cacheEntry is one cached response with its measured reconstruction
// cost (compute nanoseconds; zero when unknown).
type cacheEntry struct {
	key  string
	body []byte
	cost int64
}

// newResultCache builds an empty cache with the given bounds.
func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		entries:    make(map[string]*list.Element),
	}
}

// get returns the cached body for key, marking it most recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	body, _, ok := c.getCost(key)
	return body, ok
}

// getCost is get plus the entry's recorded reconstruction cost, which
// the peer protocol forwards so receiving replicas can rank the entry
// correctly in their own caches.
func (c *resultCache) getCost(key string) ([]byte, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, 0, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.body, e.cost, true
}

// put stores body under key with no recorded cost; see putCost.
func (c *resultCache) put(key string, body []byte) {
	c.putCost(key, body, 0)
}

// putCost stores body under key with its measured reconstruction cost,
// evicting entries until both budgets hold. The victim each round is
// the entry with the lowest cost-per-byte — cheap bulky responses make
// room for expensive compact ones — scanning from the least-recently-
// used end so that equal densities (notably all-zero costs) degrade to
// exact LRU order. A body larger than the whole byte budget is not
// cached at all (it would only evict everything and then miss anyway).
func (c *resultCache) putCost(key string, body []byte, cost int64) {
	if int64(len(body)) > c.maxBytes {
		return
	}
	if cost < 0 {
		cost = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Identical key, possibly refreshed body (same content by
		// construction — keys are content-addressed).
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		if cost > 0 {
			e.cost = cost
		}
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, body: body, cost: cost})
		c.bytes += int64(len(body))
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		victim := c.cheapestLocked()
		if victim == nil {
			break
		}
		e := victim.Value.(*cacheEntry)
		c.ll.Remove(victim)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.body))
	}
}

// cheapestLocked returns the eviction victim: the entry with the lowest
// cost-per-byte, ties resolved toward the least recently used (the scan
// starts at the back and only a strictly lower density displaces the
// candidate). Callers hold mu.
func (c *resultCache) cheapestLocked() *list.Element {
	victim := c.ll.Back()
	if victim == nil {
		return nil
	}
	best := entryDensity(victim.Value.(*cacheEntry))
	for el := victim.Prev(); el != nil; el = el.Prev() {
		if d := entryDensity(el.Value.(*cacheEntry)); d < best {
			victim, best = el, d
		}
	}
	return victim
}

// entryDensity is the memory tier's eviction-cost formula:
// reconstruction cost over body bytes (an empty body ranks cheapest).
func entryDensity(e *cacheEntry) float64 {
	if len(e.body) == 0 {
		return -1
	}
	return float64(e.cost) / float64(len(e.body))
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// size returns the current stored byte total.
func (c *resultCache) size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

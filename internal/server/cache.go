package server

import (
	"container/list"
	"sync"
)

// resultCache is the bounded content-addressed response store: request
// key → the exact bytes the cold execution produced. Entries are evicted
// least-recently-used, under both an entry-count and a byte budget, so a
// stream of distinct keys cannot grow the daemon without bound. Bodies
// are stored and returned by reference and must be treated as immutable
// (handlers only ever write them to the wire).
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	entries    map[string]*list.Element
}

// cacheEntry is one cached response.
type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache builds an empty cache with the given bounds.
func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		entries:    make(map[string]*list.Element),
	}
}

// get returns the cached body for key, marking it most recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting least-recently-used entries until
// both budgets hold. A body larger than the whole byte budget is not
// cached at all (it would only evict everything and then miss anyway).
func (c *resultCache) put(key string, body []byte) {
	if int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Identical key, possibly refreshed body (same content by
		// construction — keys are content-addressed).
		c.bytes += int64(len(body)) - int64(len(el.Value.(*cacheEntry).body))
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += int64(len(body))
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.body))
	}
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// size returns the current stored byte total.
func (c *resultCache) size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

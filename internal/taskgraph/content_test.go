package taskgraph

import (
	"sync"
	"testing"

	"locsched/internal/prog"
)

// contentTestGraph builds a two-process graph sharing one array.
func contentTestGraph(t *testing.T) *Graph {
	t.Helper()
	arr, err := prog.NewArray("A", 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	iter := prog.Seg("i", 0, 256)
	s1, err := prog.NewProcessSpec("w", iter, 2, prog.StreamRef(arr, prog.Write, iter, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := prog.NewProcessSpec("r", iter, 1, prog.StreamRef(arr, prog.Read, iter, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	g := New()
	if err := g.AddProcess(&Process{ID: ProcID{0, 0}, Spec: s1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddProcess(&Process{ID: ProcID{0, 1}, Spec: s2}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(ProcID{0, 0}, ProcID{0, 1}); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestContentMemoized: Content freezes the graph, is computed once, and
// every later call returns the identical object without re-hashing.
func TestContentMemoized(t *testing.T) {
	g := contentTestGraph(t)
	if g.Frozen() {
		t.Fatal("graph frozen before Content")
	}
	c1 := g.Content()
	if !g.Frozen() {
		t.Error("Content must freeze the graph")
	}
	if c1.FP == "" || len(c1.ArrayIndex) != 1 {
		t.Fatalf("content = %+v, want nonempty FP and 1 aliased array", c1)
	}
	if c2 := g.Content(); c2 != c1 {
		t.Error("second Content call returned a different object (memo miss)")
	}
	if g.Fingerprint() != c1.FP {
		t.Error("Fingerprint disagrees with Content().FP")
	}
	// Mutation after Content is rejected by Freeze semantics, so the memo
	// can never go stale.
	if err := g.AddDep(ProcID{0, 1}, ProcID{0, 0}); err == nil {
		t.Error("AddDep after Content must fail (graph frozen)")
	}
}

// TestContentEqualGraphsEqualFP: content-equal graphs built as fresh
// object families share a fingerprint; structural changes move it.
func TestContentEqualGraphsEqualFP(t *testing.T) {
	g1 := contentTestGraph(t)
	g2 := contentTestGraph(t)
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Error("content-equal graphs got different fingerprints")
	}
	g3 := contentTestGraph(t) // drop the edge before freezing: different structure
	g4 := New()
	for _, p := range g3.Processes() {
		if err := g4.AddProcess(p); err != nil {
			t.Fatal(err)
		}
	}
	if g4.Fingerprint() == g1.Fingerprint() {
		t.Error("edge removal did not change the fingerprint")
	}
}

// TestContentConcurrent races first-computation from many goroutines; all
// must observe one winner (run under -race in CI).
func TestContentConcurrent(t *testing.T) {
	g := contentTestGraph(t)
	var wg sync.WaitGroup
	out := make([]*Content, 16)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = g.Content()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(out); i++ {
		if out[i] != out[0] {
			t.Fatalf("goroutine %d observed a different Content pointer", i)
		}
		if out[i].FP != out[0].FP {
			t.Fatalf("goroutine %d observed a different fingerprint", i)
		}
	}
}

package taskgraph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"locsched/internal/prog"
)

// Content is a graph's content identity: a hash of everything the
// scheduling analysis depends on, plus the aliasing structure of the
// arrays it references. Two graphs with equal Content behave identically
// under the sharing analysis, the schedulers, and the simulator (given
// equal layouts), so Content.FP is the key every content-addressed cache
// in the experiment and serving layers uses.
type Content struct {
	// FP is the hex-encoded SHA-256 of the graph's processes (ID, name,
	// compute cost, iteration space, references with access maps), the
	// content of every referenced array, the aliasing structure (which
	// references resolve to the same array object), and the dependence
	// edges.
	FP string
	// ArrayIndex assigns every distinct array object referenced by the
	// graph the dense index it was first seen at during hashing. Callers
	// that key on (graph, array list) pairs reuse it to express array
	// aliasing consistently with FP.
	ArrayIndex map[*prog.Array]int
}

// HashArray writes one array's content — name, dimension extents, and
// element size — tagged with its dense aliasing index. It is the shared
// array-hashing primitive of both the graph fingerprint and the layout
// fingerprints built on top of it.
func HashArray(w io.Writer, idx int, arr *prog.Array) {
	fmt.Fprintf(w, "A%d=%s/%v/%d;", idx, arr.Name, arr.Dims, arr.Elem)
}

// Content returns the graph's content identity, computing it on first
// use and memoizing it on the graph itself. The graph is frozen first,
// so the hashed structure cannot change afterwards — Freeze semantics
// are the invalidation rule: a frozen graph's content is final, and an
// unfrozen graph has no cached content to go stale. The memo is a
// per-graph atomic, so concurrent first calls race benignly (both
// compute the same value; one wins) and steady-state lookups are a
// single pointer load with no lock and no re-hash of presburger strings.
func (g *Graph) Content() *Content {
	if c := g.content.Load(); c != nil {
		return c
	}
	g.Freeze()
	c := g.computeContent()
	if g.content.CompareAndSwap(nil, c) {
		return c
	}
	return g.content.Load()
}

// Fingerprint returns Content().FP: the graph's content hash alone.
func (g *Graph) Fingerprint() string { return g.Content().FP }

// computeContent hashes the frozen graph's full analyzable structure.
func (g *Graph) computeContent() *Content {
	h := sha256.New()
	arrIdx := make(map[*prog.Array]int)
	for _, id := range g.ProcIDs() {
		spec := g.Process(id).Spec
		fmt.Fprintf(h, "P%d.%d|%s|c%d|%s|", id.Task, id.Idx, spec.Name, spec.ComputePerIter, spec.IterSpace)
		for _, r := range spec.Refs {
			ai, ok := arrIdx[r.Array]
			if !ok {
				ai = len(arrIdx)
				arrIdx[r.Array] = ai
				HashArray(h, ai, r.Array)
			}
			fmt.Fprintf(h, "r%d@%d:%s|", r.Kind, ai, r.Map)
		}
		for _, s := range g.Succs(id) {
			fmt.Fprintf(h, ">%d.%d", s.Task, s.Idx)
		}
		io.WriteString(h, ";")
	}
	return &Content{FP: hex.EncodeToString(h.Sum(nil)), ArrayIndex: arrIdx}
}

package taskgraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"locsched/internal/prog"
)

func specNamed(name string) *prog.ProcessSpec {
	a := prog.MustArray("A_"+name, 4, 100)
	iter := prog.Seg("i", 0, 10)
	return prog.MustProcessSpec(name, iter, 0, prog.StreamRef(a, prog.Read, iter, 1, 0))
}

func addProc(t *testing.T, g *Graph, task, idx int) ProcID {
	t.Helper()
	id := ProcID{Task: task, Idx: idx}
	if err := g.AddProcess(&Process{ID: id, Spec: specNamed(id.String())}); err != nil {
		t.Fatalf("AddProcess(%v): %v", id, err)
	}
	return id
}

func TestAddProcessValidation(t *testing.T) {
	g := New()
	if err := g.AddProcess(nil); err == nil {
		t.Error("nil process should fail")
	}
	if err := g.AddProcess(&Process{ID: ProcID{0, 0}}); err == nil {
		t.Error("nil spec should fail")
	}
	addProc(t, g, 0, 0)
	if err := g.AddProcess(&Process{ID: ProcID{0, 0}, Spec: specNamed("dup")}); err == nil {
		t.Error("duplicate ID should fail")
	}
}

func TestAddDepValidation(t *testing.T) {
	g := New()
	a := addProc(t, g, 0, 0)
	b := addProc(t, g, 0, 1)
	if err := g.AddDep(a, a); err == nil {
		t.Error("self-dependence should fail")
	}
	if err := g.AddDep(a, ProcID{9, 9}); err == nil {
		t.Error("unknown target should fail")
	}
	if err := g.AddDep(ProcID{9, 9}, a); err == nil {
		t.Error("unknown source should fail")
	}
	if err := g.AddDep(a, b); err != nil {
		t.Fatalf("AddDep: %v", err)
	}
	if err := g.AddDep(a, b); err == nil {
		t.Error("duplicate edge should fail")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestRootsAndAdjacency(t *testing.T) {
	g := New()
	a := addProc(t, g, 0, 0)
	b := addProc(t, g, 0, 1)
	c := addProc(t, g, 0, 2)
	if err := g.AddDep(a, c); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(b, c); err != nil {
		t.Fatal(err)
	}
	roots := g.Roots()
	if len(roots) != 2 || roots[0] != a || roots[1] != b {
		t.Errorf("Roots = %v, want [%v %v]", roots, a, b)
	}
	if got := g.Preds(c); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("Preds(c) = %v", got)
	}
	if got := g.Succs(a); len(got) != 1 || got[0] != c {
		t.Errorf("Succs(a) = %v", got)
	}
}

func TestTopoOrderDeterministicAndValid(t *testing.T) {
	g := New()
	// Diamond: 0 -> {1,2} -> 3
	n0 := addProc(t, g, 0, 0)
	n1 := addProc(t, g, 0, 1)
	n2 := addProc(t, g, 0, 2)
	n3 := addProc(t, g, 0, 3)
	for _, e := range [][2]ProcID{{n0, n1}, {n0, n2}, {n1, n3}, {n2, n3}} {
		if err := g.AddDep(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[ProcID]int)
	for i, id := range topo {
		pos[id] = i
	}
	for _, id := range g.ProcIDs() {
		for _, s := range g.Succs(id) {
			if pos[id] >= pos[s] {
				t.Errorf("edge %v -> %v violated in topo order %v", id, s, topo)
			}
		}
	}
	// Determinism: run again.
	topo2, _ := g.TopoOrder()
	for i := range topo {
		if topo[i] != topo2[i] {
			t.Fatalf("TopoOrder not deterministic: %v vs %v", topo, topo2)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	a := addProc(t, g, 0, 0)
	b := addProc(t, g, 0, 1)
	c := addProc(t, g, 0, 2)
	for _, e := range [][2]ProcID{{a, b}, {b, c}, {c, a}} {
		if err := g.AddDep(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err == nil {
		t.Error("cyclic graph should fail validation")
	}
	if _, err := g.Levels(); err == nil {
		t.Error("Levels of cyclic graph should fail")
	}
}

func TestLevelsAndCriticalPath(t *testing.T) {
	g := New()
	// Chain of 3 plus a detached node.
	a := addProc(t, g, 0, 0)
	b := addProc(t, g, 0, 1)
	c := addProc(t, g, 0, 2)
	d := addProc(t, g, 0, 3)
	if err := g.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(b, c); err != nil {
		t.Fatal(err)
	}
	lv, err := g.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	want := map[ProcID]int{a: 0, b: 1, c: 2, d: 0}
	for id, l := range want {
		if lv[id] != l {
			t.Errorf("level(%v) = %d, want %d", id, lv[id], l)
		}
	}
	cp, err := g.CriticalPathLen()
	if err != nil {
		t.Fatalf("CriticalPathLen: %v", err)
	}
	if cp != 3 {
		t.Errorf("CriticalPathLen = %d, want 3", cp)
	}
}

func TestCriticalPath(t *testing.T) {
	g := New()
	a := addProc(t, g, 0, 0)
	b := addProc(t, g, 0, 1)
	c := addProc(t, g, 0, 2)
	d := addProc(t, g, 0, 3) // detached
	if err := g.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(b, c); err != nil {
		t.Fatal(err)
	}
	path, err := g.CriticalPath()
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	want := []ProcID{a, b, c}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("path[%d] = %v, want %v", i, path[i], want[i])
		}
	}
	// Path edges must exist.
	for i := 1; i < len(path); i++ {
		found := false
		for _, s := range g.Succs(path[i-1]) {
			if s == path[i] {
				found = true
			}
		}
		if !found {
			t.Errorf("path step %v -> %v is not an edge", path[i-1], path[i])
		}
	}
	_ = d
}

func TestMergeAndTasks(t *testing.T) {
	g1 := New()
	a := addProc(t, g1, 0, 0)
	b := addProc(t, g1, 0, 1)
	if err := g1.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	g2 := New()
	c := addProc(t, g2, 1, 0)
	d := addProc(t, g2, 1, 1)
	if err := g2.AddDep(c, d); err != nil {
		t.Fatal(err)
	}
	epg, err := Merge(g1, g2)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if epg.Len() != 4 || epg.NumEdges() != 2 {
		t.Errorf("merged: %d procs %d edges, want 4/2", epg.Len(), epg.NumEdges())
	}
	tasks := epg.Tasks()
	if len(tasks) != 2 || tasks[0] != 0 || tasks[1] != 1 {
		t.Errorf("Tasks = %v, want [0 1]", tasks)
	}
	tp := epg.TaskProcs(1)
	if len(tp) != 2 || tp[0] != c || tp[1] != d {
		t.Errorf("TaskProcs(1) = %v", tp)
	}
	// Inter-task dependence (what makes it an EPG).
	if err := epg.AddDep(b, c); err != nil {
		t.Fatalf("inter-task AddDep: %v", err)
	}
	if err := epg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestMergeDuplicateIDsFails(t *testing.T) {
	g1 := New()
	addProc(t, g1, 0, 0)
	g2 := New()
	addProc(t, g2, 0, 0)
	if _, err := Merge(g1, g2); err == nil {
		t.Error("merging graphs with clashing IDs should fail")
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	a := addProc(t, g, 0, 0)
	b := addProc(t, g, 0, 1)
	if err := g.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "test"); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "P0.0", "P0.1", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// TestRandomDAGsAlwaysTopoSort property: graphs built with only
// forward edges (by index) are acyclic, and TopoOrder covers all nodes
// while respecting every edge.
func TestRandomDAGsAlwaysTopoSort(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		g := New()
		n := 2 + r.Intn(20)
		ids := make([]ProcID, n)
		for i := 0; i < n; i++ {
			ids[i] = addProc(t, g, 0, i)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(4) == 0 {
					if err := g.AddDep(ids[i], ids[j]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		topo, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("trial %d: TopoOrder: %v", trial, err)
		}
		if len(topo) != n {
			t.Fatalf("trial %d: topo covers %d of %d", trial, len(topo), n)
		}
		pos := make(map[ProcID]int)
		for i, id := range topo {
			pos[id] = i
		}
		for _, id := range g.ProcIDs() {
			for _, s := range g.Succs(id) {
				if pos[id] >= pos[s] {
					t.Fatalf("trial %d: edge %v->%v violated", trial, id, s)
				}
			}
		}
	}
}

// Package taskgraph implements the paper's process graphs: a PG describes
// one task's processes and intra-task dependences; an EPG (extended
// process graph) additionally carries inter-task dependences. An edge
// P -> Q means Q may start only after P completes (Section 3).
package taskgraph

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"locsched/internal/prog"
)

// ProcID uniquely identifies a process within an EPG: the owning task and
// the process index within that task.
type ProcID struct {
	Task int
	Idx  int
}

func (id ProcID) String() string { return fmt.Sprintf("P%d.%d", id.Task, id.Idx) }

// Less orders ProcIDs lexicographically (task, then index); used to keep
// every traversal of the graph deterministic.
func (id ProcID) Less(o ProcID) bool {
	if id.Task != o.Task {
		return id.Task < o.Task
	}
	return id.Idx < o.Idx
}

// Process is a node of the graph: an identity plus the static program
// description analysed and executed for it.
type Process struct {
	ID   ProcID
	Spec *prog.ProcessSpec
}

// Graph is a directed acyclic graph of processes. It serves as both PG
// (single task) and EPG (several tasks merged). The zero value is not
// usable; call New.
type Graph struct {
	procs map[ProcID]*Process
	succ  map[ProcID][]ProcID
	pred  map[ProcID][]ProcID
	order []ProcID // insertion order, for deterministic iteration
	// frozen is atomic: concurrent experiment cells freeze the shared
	// graph on first analysis, racing benignly with each other.
	frozen atomic.Bool
	// content memoizes the graph's content identity (see Content): it is
	// populated at most once, only after the graph is frozen, so every
	// later lookup is a single pointer load.
	content atomic.Pointer[Content]
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		procs: make(map[ProcID]*Process),
		succ:  make(map[ProcID][]ProcID),
		pred:  make(map[ProcID][]ProcID),
	}
}

// Freeze marks the graph immutable: AddProcess and AddDep fail from now
// on. Analyses (sharing matrices, LS assignments, LSM mappings) and
// compiled trace streams are cached against the graph's structure, so
// the first consumer of a graph freezes it; builders that are done
// constructing may also freeze eagerly. Freezing twice is a no-op.
func (g *Graph) Freeze() { g.frozen.Store(true) }

// Frozen reports whether the graph has been frozen.
func (g *Graph) Frozen() bool { return g.frozen.Load() }

// AddProcess inserts a node. The process must have a spec and an unused ID.
func (g *Graph) AddProcess(p *Process) error {
	if g.Frozen() {
		return fmt.Errorf("taskgraph: graph is frozen (analyses may be cached); build a new graph instead of mutating")
	}
	if p == nil || p.Spec == nil {
		return fmt.Errorf("taskgraph: nil process or spec")
	}
	if _, dup := g.procs[p.ID]; dup {
		return fmt.Errorf("taskgraph: duplicate process %v", p.ID)
	}
	g.procs[p.ID] = p
	g.order = append(g.order, p.ID)
	return nil
}

// AddDep inserts a dependence edge from -> to (to waits for from). Both
// endpoints must exist; self-dependences and duplicate edges are rejected.
func (g *Graph) AddDep(from, to ProcID) error {
	if g.Frozen() {
		return fmt.Errorf("taskgraph: graph is frozen (analyses may be cached); build a new graph instead of mutating")
	}
	if from == to {
		return fmt.Errorf("taskgraph: self-dependence on %v", from)
	}
	if _, ok := g.procs[from]; !ok {
		return fmt.Errorf("taskgraph: unknown process %v", from)
	}
	if _, ok := g.procs[to]; !ok {
		return fmt.Errorf("taskgraph: unknown process %v", to)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("taskgraph: duplicate edge %v -> %v", from, to)
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

// Len returns the number of processes.
func (g *Graph) Len() int { return len(g.procs) }

// NumEdges returns the number of dependence edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, ss := range g.succ {
		n += len(ss)
	}
	return n
}

// Process returns the node with the given ID, or nil.
func (g *Graph) Process(id ProcID) *Process { return g.procs[id] }

// ProcIDs returns all process IDs in deterministic (sorted) order.
func (g *Graph) ProcIDs() []ProcID {
	ids := make([]ProcID, 0, len(g.procs))
	for id := range g.procs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// Processes returns all nodes sorted by ID.
func (g *Graph) Processes() []*Process {
	ids := g.ProcIDs()
	out := make([]*Process, len(ids))
	for i, id := range ids {
		out[i] = g.procs[id]
	}
	return out
}

// Preds returns the predecessors of id in sorted order.
func (g *Graph) Preds(id ProcID) []ProcID { return sortedCopy(g.pred[id]) }

// Succs returns the successors of id in sorted order.
func (g *Graph) Succs(id ProcID) []ProcID { return sortedCopy(g.succ[id]) }

// Roots returns processes with no predecessors ("independent processes"
// in the paper's terminology), sorted.
func (g *Graph) Roots() []ProcID {
	var roots []ProcID
	for _, id := range g.ProcIDs() {
		if len(g.pred[id]) == 0 {
			roots = append(roots, id)
		}
	}
	return roots
}

// Validate checks that the graph is acyclic.
func (g *Graph) Validate() error {
	_, err := g.TopoOrder()
	return err
}

// TopoOrder returns a deterministic topological order (Kahn's algorithm
// with a sorted frontier) or an error naming a process on a cycle.
func (g *Graph) TopoOrder() ([]ProcID, error) {
	indeg := make(map[ProcID]int, len(g.procs))
	for id := range g.procs {
		indeg[id] = len(g.pred[id])
	}
	frontier := make([]ProcID, 0, len(g.procs))
	for _, id := range g.ProcIDs() {
		if indeg[id] == 0 {
			frontier = append(frontier, id)
		}
	}
	out := make([]ProcID, 0, len(g.procs))
	for len(frontier) > 0 {
		// Pop the smallest ID to keep the order deterministic.
		id := frontier[0]
		frontier = frontier[1:]
		out = append(out, id)
		for _, s := range sortedCopy(g.succ[id]) {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = insertSorted(frontier, s)
			}
		}
	}
	if len(out) != len(g.procs) {
		for id, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("taskgraph: cycle through %v", id)
			}
		}
	}
	return out, nil
}

// Levels assigns each process its longest-path depth from the roots
// (roots are level 0). Errors on cyclic graphs.
func (g *Graph) Levels() (map[ProcID]int, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	lv := make(map[ProcID]int, len(topo))
	for _, id := range topo {
		l := 0
		for _, p := range g.pred[id] {
			if lv[p]+1 > l {
				l = lv[p] + 1
			}
		}
		lv[id] = l
	}
	return lv, nil
}

// CriticalPathLen returns the number of processes on the longest chain.
func (g *Graph) CriticalPathLen() (int, error) {
	lv, err := g.Levels()
	if err != nil {
		return 0, err
	}
	maxLv := -1
	for _, l := range lv {
		if l > maxLv {
			maxLv = l
		}
	}
	return maxLv + 1, nil
}

// CriticalPath returns one longest dependence chain, root to sink, in
// execution order (ties resolved toward smaller IDs).
func (g *Graph) CriticalPath() ([]ProcID, error) {
	lv, err := g.Levels()
	if err != nil {
		return nil, err
	}
	// Deepest node with the smallest ID.
	var end ProcID
	best := -1
	for _, id := range g.ProcIDs() {
		if lv[id] > best {
			best = lv[id]
			end = id
		}
	}
	if best < 0 {
		return nil, nil
	}
	// Walk back through predecessors one level up each step.
	path := []ProcID{end}
	cur := end
	for lv[cur] > 0 {
		found := false
		for _, p := range g.Preds(cur) {
			if lv[p] == lv[cur]-1 {
				cur = p
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("taskgraph: broken level structure at %v", cur)
		}
		path = append(path, cur)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// Tasks returns the distinct task IDs present, sorted.
func (g *Graph) Tasks() []int {
	seen := make(map[int]bool)
	for id := range g.procs {
		seen[id.Task] = true
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// TaskProcs returns the IDs belonging to one task, sorted.
func (g *Graph) TaskProcs(task int) []ProcID {
	var out []ProcID
	for _, id := range g.ProcIDs() {
		if id.Task == task {
			out = append(out, id)
		}
	}
	return out
}

// Merge combines several graphs into one EPG. Process IDs must be globally
// unique across the inputs (use distinct task IDs).
func Merge(gs ...*Graph) (*Graph, error) {
	out := New()
	for _, g := range gs {
		for _, p := range g.Processes() {
			if err := out.AddProcess(p); err != nil {
				return nil, err
			}
		}
	}
	for _, g := range gs {
		for _, id := range g.ProcIDs() {
			for _, s := range g.Succs(id) {
				if err := out.AddDep(id, s); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// WriteDOT renders the graph in Graphviz DOT format for debugging.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "EPG"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n", name); err != nil {
		return err
	}
	for _, p := range g.Processes() {
		label := p.ID.String()
		if p.Spec != nil && p.Spec.Name != "" {
			label = p.Spec.Name
		}
		if _, err := fmt.Fprintf(w, "  %q [label=%q];\n", p.ID.String(), label); err != nil {
			return err
		}
	}
	for _, id := range g.ProcIDs() {
		for _, s := range g.Succs(id) {
			if _, err := fmt.Fprintf(w, "  %q -> %q;\n", id.String(), s.String()); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func sortedCopy(ids []ProcID) []ProcID {
	out := append([]ProcID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func insertSorted(ids []ProcID, id ProcID) []ProcID {
	i := sort.Search(len(ids), func(i int) bool { return id.Less(ids[i]) })
	ids = append(ids, ProcID{})
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

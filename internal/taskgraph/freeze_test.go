package taskgraph

import (
	"strings"
	"testing"

	"locsched/internal/prog"
)

func freezeSpec(t *testing.T, name string) *prog.ProcessSpec {
	t.Helper()
	arr := prog.MustArray(name+".A", 4, 1024)
	iter := prog.Seg("i", 0, 16)
	return prog.MustProcessSpec(name, iter, 1, prog.StreamRef(arr, prog.Read, iter, 1, 0))
}

// TestFreeze: a frozen graph rejects structural mutation — the guard
// that keeps structurally-keyed analysis caches valid — while read-side
// queries keep working; freezing is idempotent.
func TestFreeze(t *testing.T) {
	g := New()
	a := &Process{ID: ProcID{Task: 0, Idx: 0}, Spec: freezeSpec(t, "a")}
	bp := &Process{ID: ProcID{Task: 0, Idx: 1}, Spec: freezeSpec(t, "b")}
	if err := g.AddProcess(a); err != nil {
		t.Fatal(err)
	}
	if err := g.AddProcess(bp); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(a.ID, bp.ID); err != nil {
		t.Fatal(err)
	}
	if g.Frozen() {
		t.Fatal("new graph reports frozen")
	}

	g.Freeze()
	g.Freeze() // idempotent
	if !g.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}

	c := &Process{ID: ProcID{Task: 0, Idx: 2}, Spec: freezeSpec(t, "c")}
	if err := g.AddProcess(c); err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Errorf("AddProcess on frozen graph: err = %v, want frozen error", err)
	}
	if err := g.AddDep(bp.ID, a.ID); err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Errorf("AddDep on frozen graph: err = %v, want frozen error", err)
	}
	if g.Len() != 2 || g.NumEdges() != 1 {
		t.Errorf("frozen graph mutated: %d procs, %d edges", g.Len(), g.NumEdges())
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Errorf("TopoOrder on frozen graph: %v", err)
	}

	// Merge reads frozen inputs into a fresh, mutable graph.
	merged, err := Merge(g)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Frozen() {
		t.Error("Merge output starts frozen")
	}
	if err := merged.AddProcess(c); err != nil {
		t.Errorf("Merge output rejects mutation: %v", err)
	}
}

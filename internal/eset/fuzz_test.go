package eset

import "testing"

// FuzzSetAlgebra feeds arbitrary byte strings interpreted as interval
// endpoints into the set builder and checks algebraic invariants that
// must hold for any input.
func FuzzSetAlgebra(f *testing.F) {
	f.Add([]byte{1, 5, 3, 9}, []byte{2, 7})
	f.Add([]byte{}, []byte{0, 0, 0, 0})
	f.Add([]byte{255, 1}, []byte{128, 128, 64})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		build := func(raw []byte) *Set {
			b := NewBuilder()
			for i := 0; i+1 < len(raw); i += 2 {
				lo := int64(raw[i])
				b.AddRange(lo, lo+int64(raw[i+1]%32))
			}
			return b.Build()
		}
		a, bset := build(rawA), build(rawB)

		inter := a.Intersect(bset)
		union := a.Union(bset)
		diff := a.Subtract(bset)

		// Normalization: runs sorted, disjoint, non-adjacent, non-empty.
		for _, s := range []*Set{a, bset, inter, union, diff} {
			runs := s.Runs()
			for i, r := range runs {
				if r.Hi <= r.Lo {
					t.Fatalf("empty run %v", r)
				}
				if i > 0 && runs[i-1].Hi >= r.Lo {
					t.Fatalf("overlapping/adjacent runs %v %v", runs[i-1], r)
				}
			}
		}
		// Cardinality identities.
		if union.Card() != a.Card()+bset.Card()-inter.Card() {
			t.Fatalf("inclusion-exclusion violated")
		}
		if diff.Card() != a.Card()-inter.Card() {
			t.Fatalf("difference cardinality violated")
		}
		if inter.Card() != a.IntersectCard(bset) {
			t.Fatalf("IntersectCard mismatch")
		}
		// Membership spot checks.
		for e := int64(0); e < 300; e += 7 {
			inA, inB := a.Contains(e), bset.Contains(e)
			if inter.Contains(e) != (inA && inB) {
				t.Fatalf("intersect membership at %d", e)
			}
			if union.Contains(e) != (inA || inB) {
				t.Fatalf("union membership at %d", e)
			}
			if diff.Contains(e) != (inA && !inB) {
				t.Fatalf("difference membership at %d", e)
			}
		}
	})
}

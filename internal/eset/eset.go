// Package eset provides compact concrete sets of int64 elements stored as
// sorted, non-overlapping, half-open runs [Lo, Hi).
//
// Data spaces of array-intensive processes are unions of a few contiguous
// (or small-strided) ranges of linearized array elements, so run-length
// representation makes the paper's sharing-set cardinalities
// |SS_k,p| = |DS_k ∩ DS_p| cheap: intersection is a linear merge of runs
// instead of an element-wise scan.
package eset

import (
	"fmt"
	"sort"
	"strings"
)

// Run is a half-open interval [Lo, Hi) of int64 elements.
type Run struct {
	Lo, Hi int64
}

// Len returns the number of elements in the run.
func (r Run) Len() int64 { return r.Hi - r.Lo }

// Set is an immutable set of int64 elements. The zero value is the empty
// set and is ready to use.
type Set struct {
	runs []Run // sorted by Lo, pairwise disjoint and non-adjacent
}

// Empty returns the empty set.
func Empty() *Set { return &Set{} }

// FromRuns builds a set from arbitrary (possibly overlapping, unsorted)
// runs. Runs with Hi <= Lo are ignored.
func FromRuns(runs ...Run) *Set {
	b := NewBuilder()
	for _, r := range runs {
		b.AddRange(r.Lo, r.Hi)
	}
	return b.Build()
}

// FromSlice builds a set from arbitrary elements.
func FromSlice(elems []int64) *Set {
	b := NewBuilder()
	for _, e := range elems {
		b.Add(e)
	}
	return b.Build()
}

// Builder accumulates elements and ranges, then normalizes them into a Set.
type Builder struct {
	runs []Run
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Add inserts a single element.
func (b *Builder) Add(e int64) { b.runs = append(b.runs, Run{e, e + 1}) }

// AddRange inserts the half-open range [lo, hi). Empty ranges are ignored.
func (b *Builder) AddRange(lo, hi int64) {
	if hi <= lo {
		return
	}
	b.runs = append(b.runs, Run{lo, hi})
}

// Build normalizes the accumulated runs into an immutable Set and resets
// the builder.
func (b *Builder) Build() *Set {
	runs := b.runs
	b.runs = nil
	if len(runs) == 0 {
		return Empty()
	}
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].Lo != runs[j].Lo {
			return runs[i].Lo < runs[j].Lo
		}
		return runs[i].Hi < runs[j].Hi
	})
	out := runs[:1]
	for _, r := range runs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi { // overlapping or adjacent: coalesce
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return &Set{runs: append([]Run(nil), out...)}
}

// Card returns the number of elements.
func (s *Set) Card() int64 {
	var n int64
	for _, r := range s.runs {
		n += r.Len()
	}
	return n
}

// IsEmpty reports whether the set has no elements.
func (s *Set) IsEmpty() bool { return len(s.runs) == 0 }

// NumRuns returns the number of maximal runs.
func (s *Set) NumRuns() int { return len(s.runs) }

// Runs returns a copy of the normalized runs.
func (s *Set) Runs() []Run { return append([]Run(nil), s.runs...) }

// Contains reports whether e is in the set.
func (s *Set) Contains(e int64) bool {
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Hi > e })
	return i < len(s.runs) && s.runs[i].Lo <= e
}

// Min returns the smallest element; ok is false for the empty set.
func (s *Set) Min() (int64, bool) {
	if len(s.runs) == 0 {
		return 0, false
	}
	return s.runs[0].Lo, true
}

// Max returns the largest element; ok is false for the empty set.
func (s *Set) Max() (int64, bool) {
	if len(s.runs) == 0 {
		return 0, false
	}
	return s.runs[len(s.runs)-1].Hi - 1, true
}

// Bounds returns the half-open bounding interval [min, max+1) of the set;
// ok is false for the empty set. Two sets whose bounds do not overlap are
// provably disjoint, which lets pairwise-intersection sweeps (the sharing
// matrix) reject most pairs in O(1) without a run-level merge.
func (s *Set) Bounds() (Run, bool) {
	if len(s.runs) == 0 {
		return Run{}, false
	}
	return Run{Lo: s.runs[0].Lo, Hi: s.runs[len(s.runs)-1].Hi}, true
}

// Intersect returns the set of elements present in both sets.
func (s *Set) Intersect(o *Set) *Set {
	var out []Run
	i, j := 0, 0
	for i < len(s.runs) && j < len(o.runs) {
		a, b := s.runs[i], o.runs[j]
		lo := maxI64(a.Lo, b.Lo)
		hi := minI64(a.Hi, b.Hi)
		if lo < hi {
			out = append(out, Run{lo, hi})
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return &Set{runs: out}
}

// IntersectCard returns |s ∩ o| without materializing the intersection.
func (s *Set) IntersectCard(o *Set) int64 {
	var n int64
	i, j := 0, 0
	for i < len(s.runs) && j < len(o.runs) {
		a, b := s.runs[i], o.runs[j]
		lo := maxI64(a.Lo, b.Lo)
		hi := minI64(a.Hi, b.Hi)
		if lo < hi {
			n += hi - lo
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return n
}

// Union returns the set of elements present in either set.
func (s *Set) Union(o *Set) *Set {
	b := NewBuilder()
	for _, r := range s.runs {
		b.AddRange(r.Lo, r.Hi)
	}
	for _, r := range o.runs {
		b.AddRange(r.Lo, r.Hi)
	}
	return b.Build()
}

// Subtract returns the elements of s not present in o.
func (s *Set) Subtract(o *Set) *Set {
	var out []Run
	j := 0
	for _, a := range s.runs {
		lo := a.Lo
		for j < len(o.runs) && o.runs[j].Hi <= lo {
			j++
		}
		k := j
		for k < len(o.runs) && o.runs[k].Lo < a.Hi {
			b := o.runs[k]
			if b.Lo > lo {
				out = append(out, Run{lo, b.Lo})
			}
			if b.Hi > lo {
				lo = b.Hi
			}
			if lo >= a.Hi {
				break
			}
			k++
		}
		if lo < a.Hi {
			out = append(out, Run{lo, a.Hi})
		}
	}
	return &Set{runs: out}
}

// Equal reports whether both sets contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	if len(s.runs) != len(o.runs) {
		return false
	}
	for i := range s.runs {
		if s.runs[i] != o.runs[i] {
			return false
		}
	}
	return true
}

// Elements calls yield for each element in ascending order, stopping early
// if yield returns false.
func (s *Set) Elements(yield func(e int64) bool) {
	for _, r := range s.runs {
		for e := r.Lo; e < r.Hi; e++ {
			if !yield(e) {
				return
			}
		}
	}
}

// Shift returns the set with every element translated by delta.
func (s *Set) Shift(delta int64) *Set {
	runs := make([]Run, len(s.runs))
	for i, r := range s.runs {
		runs[i] = Run{r.Lo + delta, r.Hi + delta}
	}
	return &Set{runs: runs}
}

func (s *Set) String() string {
	if s.IsEmpty() {
		return "{}"
	}
	var parts []string
	for _, r := range s.runs {
		if r.Len() == 1 {
			parts = append(parts, fmt.Sprintf("%d", r.Lo))
		} else {
			parts = append(parts, fmt.Sprintf("[%d,%d)", r.Lo, r.Hi))
		}
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

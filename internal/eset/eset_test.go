package eset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	s := Empty()
	if !s.IsEmpty() || s.Card() != 0 || s.NumRuns() != 0 {
		t.Errorf("Empty() should be empty: %v", s)
	}
	if s.Contains(0) {
		t.Error("empty set should not contain 0")
	}
	if _, ok := s.Min(); ok {
		t.Error("Min of empty set should report !ok")
	}
	if _, ok := s.Max(); ok {
		t.Error("Max of empty set should report !ok")
	}
	if s.String() != "{}" {
		t.Errorf("String = %q, want {}", s.String())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if s.Card() != 0 || !s.IsEmpty() {
		t.Error("zero-value Set should be empty")
	}
	u := s.Union(FromSlice([]int64{1, 2}))
	if u.Card() != 2 {
		t.Errorf("union with zero-value set: Card = %d, want 2", u.Card())
	}
}

func TestBuilderCoalescing(t *testing.T) {
	b := NewBuilder()
	b.AddRange(10, 20)
	b.AddRange(20, 30) // adjacent: should coalesce
	b.AddRange(5, 12)  // overlapping
	b.Add(3)
	b.AddRange(50, 50) // empty: ignored
	b.AddRange(60, 55) // inverted: ignored
	s := b.Build()
	if s.NumRuns() != 2 {
		t.Fatalf("NumRuns = %d (%v), want 2", s.NumRuns(), s)
	}
	runs := s.Runs()
	if runs[0] != (Run{3, 4}) || runs[1] != (Run{5, 30}) {
		t.Errorf("runs = %v, want [{3 4} {5 30}]", runs)
	}
	if s.Card() != 1+25 {
		t.Errorf("Card = %d, want 26", s.Card())
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder()
	b.Add(1)
	first := b.Build()
	second := b.Build()
	if first.Card() != 1 {
		t.Errorf("first build Card = %d, want 1", first.Card())
	}
	if !second.IsEmpty() {
		t.Error("builder should reset after Build")
	}
}

func TestContains(t *testing.T) {
	s := FromRuns(Run{0, 10}, Run{20, 30})
	for _, e := range []int64{0, 9, 20, 29} {
		if !s.Contains(e) {
			t.Errorf("Contains(%d) = false, want true", e)
		}
	}
	for _, e := range []int64{-1, 10, 15, 19, 30, 100} {
		if s.Contains(e) {
			t.Errorf("Contains(%d) = true, want false", e)
		}
	}
}

func TestMinMax(t *testing.T) {
	s := FromRuns(Run{5, 10}, Run{20, 25})
	if mn, ok := s.Min(); !ok || mn != 5 {
		t.Errorf("Min = %d,%v, want 5,true", mn, ok)
	}
	if mx, ok := s.Max(); !ok || mx != 24 {
		t.Errorf("Max = %d,%v, want 24,true", mx, ok)
	}
}

func TestIntersect(t *testing.T) {
	// The paper's window overlap: [0,3000) ∩ [1000,4000) = [1000,3000).
	a := FromRuns(Run{0, 3000})
	b := FromRuns(Run{1000, 4000})
	got := a.Intersect(b)
	if got.Card() != 2000 {
		t.Errorf("Card = %d, want 2000", got.Card())
	}
	if got.IntersectCard(a) != 2000 {
		t.Errorf("IntersectCard mismatch")
	}
	if a.IntersectCard(b) != 2000 {
		t.Errorf("IntersectCard(a,b) = %d, want 2000", a.IntersectCard(b))
	}
}

func TestIntersectMultiRun(t *testing.T) {
	a := FromRuns(Run{0, 10}, Run{20, 30}, Run{40, 50})
	b := FromRuns(Run{5, 25}, Run{45, 60})
	got := a.Intersect(b)
	want := FromRuns(Run{5, 10}, Run{20, 25}, Run{45, 50})
	if !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got.Card() != a.IntersectCard(b) {
		t.Errorf("IntersectCard = %d, Intersect.Card = %d", a.IntersectCard(b), got.Card())
	}
}

func TestUnion(t *testing.T) {
	a := FromRuns(Run{0, 10})
	b := FromRuns(Run{5, 15}, Run{20, 25})
	got := a.Union(b)
	want := FromRuns(Run{0, 15}, Run{20, 25})
	if !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
}

func TestSubtract(t *testing.T) {
	a := FromRuns(Run{0, 30})
	b := FromRuns(Run{5, 10}, Run{20, 25})
	got := a.Subtract(b)
	want := FromRuns(Run{0, 5}, Run{10, 20}, Run{25, 30})
	if !got.Equal(want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
	if !a.Subtract(a).IsEmpty() {
		t.Error("a - a should be empty")
	}
	if !Empty().Subtract(a).IsEmpty() {
		t.Error("{} - a should be empty")
	}
	if !a.Subtract(Empty()).Equal(a) {
		t.Error("a - {} should equal a")
	}
}

func TestSubtractClipsTail(t *testing.T) {
	a := FromRuns(Run{0, 10})
	b := FromRuns(Run{8, 100})
	got := a.Subtract(b)
	want := FromRuns(Run{0, 8})
	if !got.Equal(want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
}

func TestShift(t *testing.T) {
	a := FromRuns(Run{0, 10}, Run{20, 30})
	got := a.Shift(100)
	want := FromRuns(Run{100, 110}, Run{120, 130})
	if !got.Equal(want) {
		t.Errorf("Shift = %v, want %v", got, want)
	}
	if got.Card() != a.Card() {
		t.Error("Shift should preserve cardinality")
	}
}

func TestElementsOrderAndEarlyStop(t *testing.T) {
	s := FromRuns(Run{3, 5}, Run{8, 10})
	var got []int64
	s.Elements(func(e int64) bool {
		got = append(got, e)
		return true
	})
	want := []int64{3, 4, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("element %d = %d, want %d", i, got[i], want[i])
		}
	}
	var n int
	s.Elements(func(int64) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop after %d, want 2", n)
	}
}

func TestFromSliceDuplicates(t *testing.T) {
	s := FromSlice([]int64{5, 3, 3, 4, 5, 10})
	if s.Card() != 4 {
		t.Errorf("Card = %d, want 4", s.Card())
	}
	want := FromRuns(Run{3, 6}, Run{10, 11})
	if !s.Equal(want) {
		t.Errorf("FromSlice = %v, want %v", s, want)
	}
}

// randomSet builds a set and a reference map model from the same pseudo-
// random choices, used to cross-check set algebra against map algebra.
func randomSet(r *rand.Rand) (*Set, map[int64]bool) {
	b := NewBuilder()
	m := make(map[int64]bool)
	for n := r.Intn(8); n > 0; n-- {
		lo := int64(r.Intn(200) - 100)
		length := int64(r.Intn(30))
		b.AddRange(lo, lo+length)
		for e := lo; e < lo+length; e++ {
			m[e] = true
		}
	}
	return b.Build(), m
}

func TestQuickSetAlgebraMatchesMapModel(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		sa, ma := randomSet(r)
		sb, mb := randomSet(r)

		inter := sa.Intersect(sb)
		union := sa.Union(sb)
		diff := sa.Subtract(sb)

		check := func(name string, got *Set, pred func(e int64) bool) {
			lo, hi := int64(-110), int64(140)
			for e := lo; e < hi; e++ {
				want := pred(e)
				if got.Contains(e) != want {
					t.Fatalf("trial %d %s: Contains(%d) = %v, want %v (a=%v b=%v)",
						trial, name, e, got.Contains(e), want, sa, sb)
				}
			}
		}
		check("intersect", inter, func(e int64) bool { return ma[e] && mb[e] })
		check("union", union, func(e int64) bool { return ma[e] || mb[e] })
		check("subtract", diff, func(e int64) bool { return ma[e] && !mb[e] })

		if inter.Card() != sa.IntersectCard(sb) {
			t.Fatalf("trial %d: IntersectCard = %d, Intersect.Card = %d",
				trial, sa.IntersectCard(sb), inter.Card())
		}
		// Inclusion-exclusion.
		if union.Card() != sa.Card()+sb.Card()-inter.Card() {
			t.Fatalf("trial %d: |A∪B| = %d, want |A|+|B|-|A∩B| = %d",
				trial, union.Card(), sa.Card()+sb.Card()-inter.Card())
		}
	}
}

func TestQuickNormalization(t *testing.T) {
	// Property: any set built from runs has sorted, disjoint, non-adjacent runs.
	f := func(rawLos []int16, rawLens []uint8) bool {
		b := NewBuilder()
		for i, lo := range rawLos {
			length := int64(0)
			if i < len(rawLens) {
				length = int64(rawLens[i] % 20)
			}
			b.AddRange(int64(lo), int64(lo)+length)
		}
		s := b.Build()
		runs := s.Runs()
		for i, r := range runs {
			if r.Hi <= r.Lo {
				return false
			}
			if i > 0 && runs[i-1].Hi >= r.Lo {
				return false // overlapping or adjacent runs survived
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectCommutes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a, _ := randomSet(r)
		b, _ := randomSet(r)
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			t.Fatalf("trial %d: intersection not commutative: %v vs %v", trial, a, b)
		}
		if a.IntersectCard(b) != b.IntersectCard(a) {
			t.Fatalf("trial %d: IntersectCard not symmetric", trial)
		}
	}
}

func TestBounds(t *testing.T) {
	if _, ok := Empty().Bounds(); ok {
		t.Error("empty set reported bounds")
	}
	s := FromRuns(Run{10, 20}, Run{40, 45}, Run{100, 101})
	b, ok := s.Bounds()
	if !ok || b != (Run{10, 101}) {
		t.Errorf("Bounds() = %v, %v; want [10,101), true", b, ok)
	}
	// Disjoint bounds imply empty intersection (the property the blocked
	// sharing matrix relies on for O(1) pair rejection).
	o := FromRuns(Run{101, 200})
	ob, _ := o.Bounds()
	if b.Lo < ob.Hi && ob.Lo < b.Hi {
		t.Fatalf("bounds %v and %v overlap unexpectedly", b, ob)
	}
	if got := s.IntersectCard(o); got != 0 {
		t.Errorf("disjoint-bounded sets intersect: %d", got)
	}
	// Overlapping bounds are necessary but not sufficient: the sweep must
	// still merge runs, never conclude sharing from bounds alone.
	p := FromRuns(Run{21, 39})
	pb, _ := p.Bounds()
	if !(b.Lo < pb.Hi && pb.Lo < b.Hi) {
		t.Fatalf("bounds %v and %v should overlap", b, pb)
	}
	if got := s.IntersectCard(p); got != 0 {
		t.Errorf("hole-dwelling set intersects: %d", got)
	}
}

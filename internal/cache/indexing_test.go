package cache

import "testing"

func TestPrimeHelpers(t *testing.T) {
	cases := []struct{ n, want int64 }{
		{128, 127}, {127, 127}, {100, 97}, {2, 2}, {1, 2}, {0, 2}, {256, 251},
	}
	for _, c := range cases {
		if got := largestPrimeAtMost(c.n); got != c.want {
			t.Errorf("largestPrimeAtMost(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	for _, p := range []int64{2, 3, 5, 7, 97, 127, 251} {
		if !isPrime(p) {
			t.Errorf("isPrime(%d) = false", p)
		}
	}
	for _, np := range []int64{0, 1, 4, 100, 128} {
		if isPrime(np) {
			t.Errorf("isPrime(%d) = true", np)
		}
	}
}

func TestIndexingStrings(t *testing.T) {
	for _, ix := range []Indexing{ModuloIndexing, PrimeModuloIndexing, PrimeDisplacementIndexing, Indexing(99)} {
		if ix.String() == "" {
			t.Errorf("empty String for %d", int(ix))
		}
	}
}

func TestIndexFuncsInRange(t *testing.T) {
	const numSets = 128
	for _, ix := range []Indexing{ModuloIndexing, PrimeModuloIndexing, PrimeDisplacementIndexing} {
		f := ix.indexFunc(numSets)
		for block := int64(0); block < 10000; block++ {
			s := f(block)
			if s < 0 || s >= numSets {
				t.Fatalf("%v: set %d out of range for block %d", ix, s, block)
			}
		}
	}
}

// TestPrimeModuloBreaksPowerOfTwoAliasing: blocks strided by the set
// count all alias under modulo indexing but spread under prime modulo —
// the property Kharbutli et al. exploit.
func TestPrimeModuloBreaksPowerOfTwoAliasing(t *testing.T) {
	const numSets = 128
	mod := ModuloIndexing.indexFunc(numSets)
	prime := PrimeModuloIndexing.indexFunc(numSets)

	distinct := func(f func(int64) int64) int {
		seen := make(map[int64]bool)
		for i := int64(0); i < 16; i++ {
			seen[f(i*numSets)] = true // same set under plain modulo
		}
		return len(seen)
	}
	if got := distinct(mod); got != 1 {
		t.Errorf("modulo indexing spread strided blocks over %d sets, want 1", got)
	}
	if got := distinct(prime); got < 8 {
		t.Errorf("prime-modulo spread strided blocks over only %d sets, want >= 8", got)
	}
}

// TestPrimeModuloReducesConflicts: three page-aligned arrays cycling
// through the same sets thrash a 2-way modulo-indexed cache; the prime
// hash spreads them.
func TestPrimeModuloReducesConflicts(t *testing.T) {
	geom := Geometry{Size: 8 * 1024, BlockSize: 32, Assoc: 2}
	run := func(ix Indexing) Stats {
		c := MustNew(geom, WithClassification(), WithIndexing(ix))
		// Three 4KB regions at 4KB-aligned bases: identical set footprints
		// under modulo indexing. Walk them in lockstep twice.
		bases := []int64{0, 1 << 20, 2 << 20}
		for pass := 0; pass < 2; pass++ {
			for off := int64(0); off < 4096; off += 4 {
				for _, b := range bases {
					c.Access(b + off)
				}
			}
		}
		return c.Stats()
	}
	modulo := run(ModuloIndexing)
	prime := run(PrimeModuloIndexing)
	if modulo.Conflict == 0 {
		t.Fatal("modulo indexing should thrash in this scenario")
	}
	if prime.Conflict*2 > modulo.Conflict {
		t.Errorf("prime-modulo conflicts %d should be well below modulo's %d",
			prime.Conflict, modulo.Conflict)
	}
}

// TestPrimeDisplacementKeepsAllSets: unlike prime modulo, displacement
// indexing uses every set.
func TestPrimeDisplacementKeepsAllSets(t *testing.T) {
	const numSets = 128
	f := PrimeDisplacementIndexing.indexFunc(numSets)
	seen := make(map[int64]bool)
	for block := int64(0); block < numSets*numSets; block++ {
		seen[f(block)] = true
	}
	if len(seen) != numSets {
		t.Errorf("prime displacement reached %d of %d sets", len(seen), numSets)
	}
}

package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperGeom is the default L1 of Table 2: 8KB, 2-way. We use 32B blocks.
var paperGeom = Geometry{Size: 8 * 1024, BlockSize: 32, Assoc: 2}

func TestGeometry(t *testing.T) {
	g := paperGeom
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumSets() != 128 {
		t.Errorf("NumSets = %d, want 128", g.NumSets())
	}
	if g.NumLines() != 256 {
		t.Errorf("NumLines = %d, want 256", g.NumLines())
	}
	// The paper: cache page = cache size / associativity = 4KB.
	if g.PageSize() != 4096 {
		t.Errorf("PageSize = %d, want 4096", g.PageSize())
	}
	if g.SetOf(0) != 0 || g.SetOf(32) != 1 || g.SetOf(4096) != 0 {
		t.Error("SetOf mapping wrong: sets must repeat every PageSize bytes")
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Geometry{
		{Size: 0, BlockSize: 32, Assoc: 2},
		{Size: 8192, BlockSize: 0, Assoc: 2},
		{Size: 8192, BlockSize: 32, Assoc: 0},
		{Size: 100, BlockSize: 32, Assoc: 2}, // not divisible
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %+v should be invalid", g)
		}
	}
	if _, err := New(Geometry{Size: 100, BlockSize: 32, Assoc: 2}); err == nil {
		t.Error("New with invalid geometry should fail")
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew(paperGeom)
	if got := c.Access(0); got == Hit {
		t.Error("first access should miss")
	}
	if got := c.Access(0); got != Hit {
		t.Errorf("second access = %v, want hit", got)
	}
	if got := c.Access(31); got != Hit {
		t.Errorf("same-block access = %v, want hit", got)
	}
	if got := c.Access(32); got == Hit {
		t.Error("next block should miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses() != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSetConflictLRU(t *testing.T) {
	c := MustNew(paperGeom) // 2-way, sets repeat every 4096 bytes
	// Three blocks mapping to set 0: 0, 4096, 8192.
	c.Access(0)
	c.Access(4096)
	if c.Access(0) != Hit {
		t.Error("0 should still be resident (2-way)")
	}
	c.Access(8192) // evicts LRU = 4096
	if c.Access(4096) == Hit {
		t.Error("4096 should have been evicted by LRU")
	}
	if c.Access(0) == Hit {
		// After touching 8192 and re-missing 4096, 0 was evicted too.
		t.Log("0 evicted as expected cascade")
	}
}

func TestLRUOrdering(t *testing.T) {
	c := MustNew(paperGeom)
	c.Access(0)    // set 0
	c.Access(4096) // set 0; LRU is 0
	c.Access(0)    // touch 0; LRU is 4096
	c.Access(8192) // evicts 4096
	if !c.Contains(0) {
		t.Error("0 should be resident after LRU touch")
	}
	if c.Contains(4096) {
		t.Error("4096 should be the LRU victim")
	}
	if !c.Contains(8192) {
		t.Error("8192 should be resident")
	}
}

func TestFIFOOrdering(t *testing.T) {
	c := MustNew(paperGeom, WithReplacement(FIFO))
	c.Access(0)
	c.Access(4096)
	c.Access(0)    // touch does not refresh FIFO age
	c.Access(8192) // evicts 0 (oldest fill)
	if c.Contains(0) {
		t.Error("FIFO should have evicted the oldest fill (0)")
	}
	if !c.Contains(4096) || !c.Contains(8192) {
		t.Error("4096 and 8192 should be resident")
	}
}

func TestRandomReplacementStaysLegal(t *testing.T) {
	c := MustNew(paperGeom, WithReplacement(RandomRepl), WithSeed(7))
	for i := int64(0); i < 1000; i++ {
		c.Access((i % 8) * 4096) // 8 blocks fighting over set 0 (2 ways)
	}
	st := c.Stats()
	if st.Accesses != 1000 {
		t.Errorf("Accesses = %d, want 1000", st.Accesses)
	}
	if st.Hits+st.Misses() != st.Accesses {
		t.Errorf("hits %d + misses %d != accesses %d", st.Hits, st.Misses(), st.Accesses)
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(paperGeom)
	c.Access(0)
	if !c.Contains(0) {
		t.Fatal("0 should be resident")
	}
	c.Flush()
	if c.Contains(0) {
		t.Error("flush should invalidate all lines")
	}
	if c.Access(0) == Hit {
		t.Error("access after flush should miss")
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(paperGeom)
	c.Access(0)
	c.Access(0)
	c.ResetStats()
	st := c.Stats()
	if st.Accesses != 0 || st.Hits != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
	// Contents survive reset.
	if c.Access(0) != Hit {
		t.Error("contents should survive ResetStats")
	}
}

func TestMissClassification(t *testing.T) {
	c := MustNew(paperGeom, WithClassification())
	// Cold miss on first touch.
	if got := c.Access(0); got != ColdMiss {
		t.Errorf("first access = %v, want cold", got)
	}
	// Conflict: three blocks in set 0 of a 2-way cache, working set far
	// below total capacity → misses classified as conflict.
	c.Access(4096)
	c.Access(8192)
	if got := c.Access(0); got != ConflictMiss {
		t.Errorf("re-access of 0 = %v, want conflict (fits in full-assoc)", got)
	}
	st := c.Stats()
	if st.Conflict < 1 || st.Cold != 3 {
		t.Errorf("stats = %+v, want 3 cold and >=1 conflict", st)
	}
}

func TestCapacityClassification(t *testing.T) {
	c := MustNew(paperGeom, WithClassification())
	// Stream twice through 4× the cache capacity: second pass misses are
	// capacity misses (they also miss in the fully-associative shadow).
	span := paperGeom.Size * 4
	for pass := 0; pass < 2; pass++ {
		for a := int64(0); a < span; a += paperGeom.BlockSize {
			c.Access(a)
		}
	}
	st := c.Stats()
	if st.Cold != span/paperGeom.BlockSize {
		t.Errorf("cold = %d, want %d", st.Cold, span/paperGeom.BlockSize)
	}
	if st.Capacity == 0 {
		t.Error("streaming beyond capacity should produce capacity misses")
	}
	if st.Conflict != 0 {
		t.Errorf("sequential streaming should produce no conflict misses, got %d", st.Conflict)
	}
}

func TestClassificationSurvivesFlush(t *testing.T) {
	c := MustNew(paperGeom, WithClassification())
	c.Access(0)
	c.Flush()
	// Block 0 was seen before: the re-miss is not cold.
	if got := c.Access(0); got == ColdMiss {
		t.Error("re-access after flush should not be a cold miss")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 10, Hits: 5, Cold: 2, Capacity: 2, Conflict: 1}
	b := Stats{Accesses: 4, Hits: 1, Cold: 1, Capacity: 1, Conflict: 1}
	a.Add(b)
	if a.Accesses != 14 || a.Hits != 6 || a.Misses() != 8 {
		t.Errorf("Add result = %+v", a)
	}
	if hr := a.HitRate(); hr < 0.42 || hr > 0.43 {
		t.Errorf("HitRate = %f", hr)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty HitRate should be 0")
	}
}

func TestStringers(t *testing.T) {
	for _, r := range []Replacement{LRU, FIFO, RandomRepl, Replacement(99)} {
		if r.String() == "" {
			t.Errorf("empty String for %d", int(r))
		}
	}
	for _, m := range []MissClass{Hit, ColdMiss, CapacityMiss, ConflictMiss, MissClass(99)} {
		if m.String() == "" {
			t.Errorf("empty String for %d", int(m))
		}
	}
	if paperGeom.String() == "" {
		t.Error("geometry String should be non-empty")
	}
}

// TestQuickFullyAssocNoConflict property: in a fully-associative cache, a
// working set no larger than capacity never misses after warmup.
func TestQuickFullyAssocNoConflict(t *testing.T) {
	geom := Geometry{Size: 1024, BlockSize: 32, Assoc: 32} // fully assoc, 32 lines
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(geom)
		// Working set of exactly 32 blocks.
		blocks := make([]int64, 32)
		for i := range blocks {
			blocks[i] = int64(i) * geom.BlockSize
		}
		for _, b := range blocks {
			c.Access(b)
		}
		c.ResetStats()
		for i := 0; i < 500; i++ {
			c.Access(blocks[rng.Intn(len(blocks))])
		}
		return c.Stats().Misses() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickStatsConsistency property: hits + misses == accesses under any
// access pattern and policy.
func TestQuickStatsConsistency(t *testing.T) {
	f := func(addrs []uint16, policyPick uint8) bool {
		policy := []Replacement{LRU, FIFO, RandomRepl}[int(policyPick)%3]
		c := MustNew(paperGeom, WithReplacement(policy), WithClassification())
		for _, a := range addrs {
			c.Access(int64(a))
		}
		st := c.Stats()
		return st.Hits+st.Misses() == st.Accesses && st.Accesses == int64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickSetAssocVsShadow property: the set-associative cache never
// outperforms its fully-associative shadow on misses-after-warmup... we
// check the weaker, always-true invariant that conflict misses are only
// reported when classification is enabled.
func TestQuickConflictOnlyWithClassification(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew(paperGeom)
		for _, a := range addrs {
			c.Access(int64(a))
		}
		return c.Stats().Conflict == 0 && c.Stats().Cold == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

package cache

import (
	"testing"
)

func benchGeom() Geometry {
	return Geometry{Size: 8 << 10, BlockSize: 32, Assoc: 2}
}

// warm drives the address pattern once so every paged directory page the
// benchmark will touch exists before measurement.
func warm(c *Cache, span int64) {
	for addr := int64(0); addr < span; addr += 32 {
		c.Access(addr)
	}
}

// TestAccessRWZeroAlloc asserts the acceptance criterion directly:
// steady-state AccessRW allocates nothing, with and without
// classification, across replacement policies and indexing schemes.
func TestAccessRWZeroAlloc(t *testing.T) {
	const span = 64 << 10
	cases := []struct {
		name string
		opts []Option
	}{
		{"plain", nil},
		{"classified", []Option{WithClassification()}},
		{"classified-fifo", []Option{WithClassification(), WithReplacement(FIFO)}},
		{"classified-prime", []Option{WithClassification(), WithIndexing(PrimeModuloIndexing)}},
		{"writeback", []Option{WithClassification(), WithWritePolicy(WriteBack)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := MustNew(benchGeom(), tc.opts...)
			warm(c, span)
			var addr int64
			allocs := testing.AllocsPerRun(10000, func() {
				c.AccessRW(addr%span, addr%96 == 0)
				addr += 32
			})
			if allocs != 0 {
				t.Errorf("AccessRW allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkCacheAccessHit measures the hit path: a footprint that fits
// the cache.
func BenchmarkCacheAccessHit(b *testing.B) {
	c := MustNew(benchGeom())
	span := benchGeom().Size // resident working set
	warm(c, span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i) * 32 % span)
	}
}

// BenchmarkCacheAccessMiss measures the miss/fill path: a streaming
// footprint far beyond the cache.
func BenchmarkCacheAccessMiss(b *testing.B) {
	c := MustNew(benchGeom())
	const span = 64 << 10
	warm(c, span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i) * 32 % span)
	}
}

// BenchmarkCacheAccessClassified measures the classification overhead
// (shadow LRU + cold-miss directory) on the streaming pattern.
func BenchmarkCacheAccessClassified(b *testing.B) {
	c := MustNew(benchGeom(), WithClassification())
	const span = 64 << 10
	warm(c, span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i) * 32 % span)
	}
}

// BenchmarkCacheAccessClassifiedHit measures classification on the
// resident working set (shadow hit path).
func BenchmarkCacheAccessClassifiedHit(b *testing.B) {
	c := MustNew(benchGeom(), WithClassification())
	span := benchGeom().Size
	warm(c, span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i) * 32 % span)
	}
}

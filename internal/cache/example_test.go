package cache_test

import (
	"fmt"

	"locsched/internal/cache"
)

// ExampleCache shows the conflict-miss classification the LSM evaluation
// relies on: three blocks fighting over one set of a 2-way cache miss
// because of limited associativity, not capacity.
func ExampleCache() {
	c := cache.MustNew(
		cache.Geometry{Size: 8 << 10, BlockSize: 32, Assoc: 2},
		cache.WithClassification(),
	)
	c.Access(0)    // cold
	c.Access(4096) // cold, same set (the paper's cache page is 4KB)
	c.Access(8192) // cold, evicts one way
	class := c.Access(0)
	fmt.Println(class)
	// Output: conflict
}

package cache

// Batched entry points for run-length-encoded simulation. Both methods
// are exact: they produce the same stats, tick counter, per-line recency
// and dirty state, shadow-directory order, and replacement-RNG state as
// the equivalent sequence of AccessRW calls, which the differential
// tests in internal/trace and internal/mpsoc enforce.

// findLine returns the index into c.lines of the resident line holding
// block, or -1. It touches no stats and no recency state.
func (c *Cache) findLine(block int64) int64 {
	base := c.setIndex(block) * int64(c.assoc)
	set := c.lines[base : base+int64(c.assoc)]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return base + int64(i)
		}
	}
	return -1
}

// AccessRun simulates count consecutive references that all fall in the
// cache block containing addr (the caller guarantees this — e.g. a
// strided run with |stride|·(count−1) staying inside one block) in O(1).
// The first reference resolves through the normal per-access path and
// its classification is returned; the remaining count−1 references are
// hits by construction — the block is the most recently used line of its
// set and nothing intervenes — so they are applied in bulk: the tick
// advances by count−1, hit and access counters grow by count−1, and
// under LRU the line's recency becomes the tick of the run's last
// reference. The shadow directory needs no bulk update: re-touching the
// shadow-MRU block leaves its order unchanged.
func (c *Cache) AccessRun(addr int64, count int64, write bool) (class MissClass, wroteBack bool) {
	class, wroteBack = c.AccessRW(addr, write)
	if count > 1 {
		n := count - 1
		li := c.findLine(c.blockOf(addr))
		c.tick += n
		if c.repl == LRU {
			c.lines[li].used = c.tick
		}
		c.stats.Accesses += n
		c.stats.Hits += n
	}
	return class, wroteBack
}

// TryAccessHitIters fast-forwards iters iterations of a fixed reference
// group: each iteration touches blocks[0..R-1] in order, reference j
// writing when writes[j] is set. If every block is currently resident the
// whole replay is all-hits — hits evict nothing, so residency is
// preserved inductively — and the method applies it in O(R): access and
// hit counters grow by iters·R, the tick advances likewise, each line's
// recency becomes the tick of its last touch in the final iteration, and
// write references mark their lines dirty (no evictions occur, so no
// writebacks). The shadow directory again needs no update: after any full
// all-hit iteration the group's shadow order equals the order the
// previous iteration left behind. Returns true on success; if any block
// is not resident the cache is left untouched and the caller must
// simulate per access.
//
// blocks may contain duplicates (two references in one block); the later
// reference's recency wins, exactly as per-access simulation would have
// it.
func (c *Cache) TryAccessHitIters(blocks []int64, writes []bool, iters int64) bool {
	r := len(blocks)
	if iters <= 0 || r == 0 {
		return true
	}
	if cap(c.lineScratch) < r {
		c.lineScratch = make([]int64, r)
	}
	scratch := c.lineScratch[:r]
	for j, b := range blocks {
		li := c.findLine(b)
		if li < 0 {
			return false
		}
		// With classification on, the block must also be resident in the
		// fully-associative shadow: a block can survive in its set while
		// the shadow's global LRU has evicted it, and per-access replay
		// would then re-insert it (evicting the shadow tail). One
		// per-access iteration re-establishes shadow residency, so the
		// caller's next attempt succeeds.
		if c.shadow != nil && !c.shadow.resident(b) {
			return false
		}
		scratch[j] = li
	}
	total := iters * int64(r)
	final := c.tick + total
	markDirty := c.write == WriteBack
	for j := range scratch {
		ln := &c.lines[scratch[j]]
		if c.repl == LRU {
			ln.used = final - int64(r-1-j)
		}
		if markDirty && writes[j] {
			ln.dirty = true
		}
	}
	if c.shadow != nil && !c.shadow.mruPrefixIs(blocks) {
		// Replay one iteration's worth of shadow touches. Per-access
		// simulation would move each block to shadow-MRU every iteration,
		// leaving the group in touch order at the top after each full
		// iteration — so one pass equals iters passes. The pass cannot
		// blindly be skipped: the caller may arrive with a
		// partially-replayed iteration's order (e.g. after a process
		// resumed mid-iteration on this core), and the bulk update must
		// end in the exact state per-access simulation would reach. It
		// can be skipped exactly when the MRU prefix already equals the
		// replay's final order (mruPrefixIs), which is the steady state
		// of consecutive spans over the same group.
		for _, b := range blocks {
			c.shadow.access(b)
		}
	}
	c.tick = final
	c.stats.Accesses += total
	c.stats.Hits += total
	return true
}

package cache

// Indexing selects how block numbers map to cache sets.
//
// The paper's related work (Kharbutli et al., HPCA'04, its reference [5])
// proposes prime-modulo indexing as a hardware alternative to software
// conflict avoidance: hashing with a prime number of effective sets
// breaks the power-of-two striding that makes same-offset arrays alias.
// We implement it as a pluggable index function so LSM's software
// re-layout can be compared against the hardware approach
// (BenchmarkAblationIndexing).
type Indexing int

const (
	// ModuloIndexing is the conventional set index: block mod numSets.
	ModuloIndexing Indexing = iota
	// PrimeModuloIndexing hashes with the largest prime <= numSets;
	// sets beyond the prime are unused (the scheme trades a few sets for
	// conflict resistance).
	PrimeModuloIndexing
	// PrimeDisplacementIndexing keeps all sets usable: the set index is
	// (block + prime*(block/numSets)) mod numSets, displacing successive
	// "pages" of blocks by a prime stride.
	PrimeDisplacementIndexing
)

func (ix Indexing) String() string {
	switch ix {
	case ModuloIndexing:
		return "modulo"
	case PrimeModuloIndexing:
		return "prime-modulo"
	case PrimeDisplacementIndexing:
		return "prime-displacement"
	}
	return "Indexing(?)"
}

// indexFunc returns the block→set mapping for the geometry.
func (ix Indexing) indexFunc(numSets int64) func(block int64) int64 {
	switch ix {
	case PrimeModuloIndexing:
		p := largestPrimeAtMost(numSets)
		return func(block int64) int64 { return block % p }
	case PrimeDisplacementIndexing:
		p := largestPrimeAtMost(numSets)
		return func(block int64) int64 {
			return (block + p*(block/numSets)) % numSets
		}
	default:
		return func(block int64) int64 { return block % numSets }
	}
}

// WithIndexing selects the set-index hash (default ModuloIndexing).
func WithIndexing(ix Indexing) Option {
	return func(c *Cache) { c.setIndexing(ix) }
}

// largestPrimeAtMost returns the largest prime <= n (2 for n < 2).
func largestPrimeAtMost(n int64) int64 {
	if n < 2 {
		return 2
	}
	for p := n; p >= 2; p-- {
		if isPrime(p) {
			return p
		}
	}
	return 2
}

func isPrime(n int64) bool {
	if n < 2 {
		return false
	}
	for d := int64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// Package cache models the per-core on-chip data caches of the simulated
// MPSoC: set-associative, with pluggable replacement, fixed geometry
// (Table 2 of the paper: 8KB, 2-way per core), and a miss classifier that
// separates conflict misses from capacity and cold misses — the quantity
// the paper's data-mapping phase (LSM) is designed to remove.
package cache

import (
	"fmt"
	"math/rand"
)

// Geometry describes a cache's shape.
type Geometry struct {
	Size      int64 // total bytes
	BlockSize int64 // line size in bytes
	Assoc     int   // ways per set
}

// Validate checks that the geometry is internally consistent.
func (g Geometry) Validate() error {
	if g.Size <= 0 || g.BlockSize <= 0 || g.Assoc <= 0 {
		return fmt.Errorf("cache: geometry fields must be positive: %+v", g)
	}
	if g.Size%(g.BlockSize*int64(g.Assoc)) != 0 {
		return fmt.Errorf("cache: size %d not divisible by block %d × assoc %d", g.Size, g.BlockSize, g.Assoc)
	}
	return nil
}

// NumSets returns the number of sets.
func (g Geometry) NumSets() int64 { return g.Size / (g.BlockSize * int64(g.Assoc)) }

// NumLines returns the total number of lines.
func (g Geometry) NumLines() int64 { return g.Size / g.BlockSize }

// PageSize returns the paper's "cache page": cache size / associativity,
// i.e. the address span after which set indices repeat.
func (g Geometry) PageSize() int64 { return g.Size / int64(g.Assoc) }

// BlockOf returns the block (line) number containing the address.
func (g Geometry) BlockOf(addr int64) int64 { return addr / g.BlockSize }

// SetOf returns the set index of the address.
func (g Geometry) SetOf(addr int64) int64 { return (addr / g.BlockSize) % g.NumSets() }

func (g Geometry) String() string {
	return fmt.Sprintf("%dKB %d-way %dB-blocks", g.Size/1024, g.Assoc, g.BlockSize)
}

// Replacement selects the victim policy within a set.
type Replacement int

const (
	// LRU evicts the least recently used line.
	LRU Replacement = iota
	// FIFO evicts the line resident longest.
	FIFO
	// RandomRepl evicts a pseudo-random line.
	RandomRepl
)

func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case RandomRepl:
		return "random"
	}
	return fmt.Sprintf("Replacement(%d)", int(r))
}

// MissClass classifies a miss.
type MissClass int

const (
	// Hit marks a cache hit (not a miss).
	Hit MissClass = iota
	// ColdMiss is the first-ever access to the block.
	ColdMiss
	// CapacityMiss would also have missed in a fully-associative cache of
	// equal capacity.
	CapacityMiss
	// ConflictMiss hits in the fully-associative shadow but missed in the
	// set-associative cache: limited associativity is to blame.
	ConflictMiss
)

func (m MissClass) String() string {
	switch m {
	case Hit:
		return "hit"
	case ColdMiss:
		return "cold"
	case CapacityMiss:
		return "capacity"
	case ConflictMiss:
		return "conflict"
	}
	return fmt.Sprintf("MissClass(%d)", int(m))
}

// Stats accumulates access counts.
type Stats struct {
	Accesses   int64
	Hits       int64
	Cold       int64
	Capacity   int64
	Conflict   int64
	Writebacks int64 // dirty evictions under WriteBack
}

// Misses returns the total miss count.
func (s Stats) Misses() int64 { return s.Cold + s.Capacity + s.Conflict }

// HitRate returns hits/accesses (0 for no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Cold += o.Cold
	s.Capacity += o.Capacity
	s.Conflict += o.Conflict
	s.Writebacks += o.Writebacks
}

type line struct {
	tag   int64
	valid bool
	dirty bool
	used  int64 // last-use tick (LRU) or fill tick (FIFO)
}

// WritePolicy selects how stores interact with memory.
type WritePolicy int

const (
	// WriteThrough sends every store to memory (the default; store cost
	// is charged by the machine model, not the cache).
	WriteThrough WritePolicy = iota
	// WriteBack marks lines dirty and pays for memory only when a dirty
	// line is evicted; Stats.Writebacks counts those evictions.
	WriteBack
)

func (w WritePolicy) String() string {
	if w == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// Cache is a set-associative cache with an optional fully-associative
// shadow directory for miss classification.
//
// The hot path is allocation-free in steady state: lines live in one flat
// arena, the cold-miss directory is a paged bitset, and the shadow LRU is
// an intrusive list over a preallocated node arena with a paged
// block→slot index. Power-of-two geometries under modulo indexing take a
// mask-based set-index fast path; other Indexing choices go through the
// pluggable index func.
type Cache struct {
	geom        Geometry
	repl        Replacement
	lines       []line // numSets × assoc, set s at lines[s*assoc : (s+1)*assoc]
	assoc       int
	tick        int64
	stats       Stats
	rng         *rand.Rand
	seed        int64
	shadow      *shadowLRU
	seen        *pagedBits              // blocks ever referenced, for cold-miss detection
	index       func(block int64) int64 // block → set mapping (see Indexing)
	setMask     int64                   // ≥0: set = block & setMask (pow-2 modulo fast path)
	blockShift  uint                    // >0: block = addr >> blockShift (pow-2 block size)
	write       WritePolicy
	lineScratch []int64 // reused by TryAccessHitIters
}

// blockOf returns the block number of addr via the shift fast path when
// the block size is a power of two.
func (c *Cache) blockOf(addr int64) int64 {
	if c.blockShift > 0 {
		return addr >> c.blockShift
	}
	return addr / c.geom.BlockSize
}

// setIndex returns the set of a block via the mask fast path when the
// geometry allows it.
func (c *Cache) setIndex(block int64) int64 {
	if c.setMask >= 0 {
		return block & c.setMask
	}
	return c.index(block)
}

// Option configures a Cache.
type Option func(*Cache)

// WithReplacement selects the replacement policy (default LRU).
func WithReplacement(r Replacement) Option {
	return func(c *Cache) { c.repl = r }
}

// WithClassification enables conflict/capacity/cold miss classification
// via a fully-associative LRU shadow of equal capacity. Costs extra time
// and memory per access.
func WithClassification() Option {
	return func(c *Cache) {
		c.shadow = newShadowLRU(c.geom.NumLines())
		c.seen = &pagedBits{}
	}
}

// WithSeed seeds the RandomRepl policy (default seed 1).
func WithSeed(seed int64) Option {
	return func(c *Cache) {
		c.seed = seed
		c.rng = nil
	}
}

// WithWritePolicy selects the store policy (default WriteThrough).
func WithWritePolicy(w WritePolicy) Option {
	return func(c *Cache) { c.write = w }
}

// New builds a cache with the given geometry.
func New(geom Geometry, opts ...Option) (*Cache, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	numSets := geom.NumSets()
	c := &Cache{
		geom:  geom,
		repl:  LRU,
		lines: make([]line, numSets*int64(geom.Assoc)),
		assoc: geom.Assoc,
		seed:  1,
	}
	if geom.BlockSize&(geom.BlockSize-1) == 0 {
		for bs := geom.BlockSize; bs > 1; bs >>= 1 {
			c.blockShift++
		}
	}
	c.setIndexing(ModuloIndexing)
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// setIndexing installs the block→set mapping, enabling the mask fast
// path for power-of-two modulo geometries.
func (c *Cache) setIndexing(ix Indexing) {
	numSets := c.geom.NumSets()
	c.index = ix.indexFunc(numSets)
	if ix == ModuloIndexing && numSets&(numSets-1) == 0 {
		c.setMask = numSets - 1
	} else {
		c.setMask = -1
	}
}

// MustNew is New that panics on error.
func MustNew(geom Geometry, opts ...Option) *Cache {
	c, err := New(geom, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Geometry returns the cache's shape.
func (c *Cache) Geometry() Geometry { return c.geom }

// Access simulates one read reference to addr; see AccessRW.
func (c *Cache) Access(addr int64) MissClass {
	class, _ := c.AccessRW(addr, false)
	return class
}

// AccessRW simulates one reference to addr and returns its classification
// (Hit, or the miss class; without WithClassification every miss reports
// ColdMiss on first touch of a block and CapacityMiss otherwise).
// wroteBack reports that the fill evicted a dirty line (WriteBack only).
// Steady-state calls perform no heap allocation.
func (c *Cache) AccessRW(addr int64, write bool) (class MissClass, wroteBack bool) {
	c.tick++
	c.stats.Accesses++
	block := c.blockOf(addr)
	base := c.setIndex(block) * int64(c.assoc)
	set := c.lines[base : base+int64(c.assoc)]

	shadowHit := false
	if c.shadow != nil {
		shadowHit = c.shadow.access(block)
	}

	for i := range set {
		if set[i].valid && set[i].tag == block {
			if c.repl == LRU {
				set[i].used = c.tick
			}
			if write && c.write == WriteBack {
				set[i].dirty = true
			}
			c.stats.Hits++
			return Hit, false
		}
	}

	// Miss: pick a victim and fill.
	victim := 0
	switch c.repl {
	case LRU, FIFO:
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
			if set[i].used < set[victim].used {
				victim = i
			}
		}
	case RandomRepl:
		victim = -1
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
		}
		if victim < 0 {
			if c.rng == nil {
				// Seeding a math/rand source is costly and only RandomRepl
				// ever draws from it, so construction and Reset defer it to
				// the first full-set random eviction.
				c.rng = rand.New(rand.NewSource(c.seed))
			}
			victim = c.rng.Intn(len(set))
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
		wroteBack = true
	}
	set[victim] = line{
		tag:   block,
		valid: true,
		used:  c.tick,
		dirty: write && c.write == WriteBack,
	}

	// Without WithClassification every miss is reported as capacity; with
	// it, first-touch misses are cold and shadow hits are conflicts.
	class = CapacityMiss
	if c.shadow != nil {
		firstTouch := !c.seen.testSet(block)
		switch {
		case firstTouch:
			class = ColdMiss
		case shadowHit:
			class = ConflictMiss
		}
	}
	switch class {
	case ColdMiss:
		c.stats.Cold++
	case ConflictMiss:
		c.stats.Conflict++
	default:
		c.stats.Capacity++
	}
	return class, wroteBack
}

// Contains reports whether the block holding addr is resident (without
// touching stats or recency).
func (c *Cache) Contains(addr int64) bool {
	block := c.blockOf(addr)
	base := c.setIndex(block) * int64(c.assoc)
	set := c.lines[base : base+int64(c.assoc)]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// Flush invalidates every line, counting dirty lines as writebacks
// (shadow state and the cold-miss directory are preserved: flushing does
// not make data "never seen").
func (c *Cache) Flush() {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			c.stats.Writebacks++
		}
		c.lines[i] = line{}
	}
	if c.shadow != nil {
		c.shadow.flush()
	}
}

// Reset restores the cache to its just-built state — empty lines, zero
// stats, reseeded replacement randomness, cleared shadow and cold-miss
// directories — while keeping the backing storage allocated, so runners
// can reuse one cache across simulations without reallocating.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.tick = 0
	c.stats = Stats{}
	c.rng = nil // lazily reseeded on first random eviction
	if c.shadow != nil {
		c.shadow.flush()
		c.seen.clear()
	}
}

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters, keeping cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// pagedBits is a sparse bitset over block numbers: fixed-size pages
// allocated on first touch, so densely-used regions cost one allocation
// per page ever and steady-state access allocates nothing.
type pagedBits struct {
	pages [][]uint64
}

const (
	bitsPageShift = 15 // blocks per page (32768 bits = 4KB)
	bitsPageWords = 1 << (bitsPageShift - 6)
	bitsPageMask  = 1<<bitsPageShift - 1
)

// testSet sets the bit for block and reports its previous value.
func (p *pagedBits) testSet(block int64) bool {
	pg := int(block >> bitsPageShift)
	if pg >= len(p.pages) {
		p.pages = append(p.pages, make([][]uint64, pg+1-len(p.pages))...)
	}
	words := p.pages[pg]
	if words == nil {
		words = make([]uint64, bitsPageWords)
		p.pages[pg] = words
	}
	off := block & bitsPageMask
	w, bit := off>>6, uint64(1)<<(off&63)
	old := words[w]&bit != 0
	words[w] |= bit
	return old
}

// clear zeroes every allocated page, keeping the storage.
func (p *pagedBits) clear() {
	for _, words := range p.pages {
		for i := range words {
			words[i] = 0
		}
	}
}

// pagedSlots is a sparse block→slot map with the same paging scheme;
// absent entries read as -1.
type pagedSlots struct {
	pages [][]int32
}

const (
	slotsPageShift = 12 // blocks per page (4096 × int32 = 16KB)
	slotsPageMask  = 1<<slotsPageShift - 1
)

// get returns the slot of block, or -1.
func (p *pagedSlots) get(block int64) int32 {
	pg := int(block >> slotsPageShift)
	if pg >= len(p.pages) || p.pages[pg] == nil {
		return -1
	}
	return p.pages[pg][block&slotsPageMask]
}

// set records block → slot (slot -1 deletes).
func (p *pagedSlots) set(block int64, slot int32) {
	pg := int(block >> slotsPageShift)
	if pg >= len(p.pages) {
		if slot < 0 {
			return
		}
		p.pages = append(p.pages, make([][]int32, pg+1-len(p.pages))...)
	}
	ents := p.pages[pg]
	if ents == nil {
		if slot < 0 {
			return
		}
		ents = make([]int32, 1<<slotsPageShift)
		for i := range ents {
			ents[i] = -1
		}
		p.pages[pg] = ents
	}
	ents[block&slotsPageMask] = slot
}

// shadowLRU is a fully-associative LRU directory of block numbers used to
// classify conflict vs. capacity misses (Hill & Smith's classical
// scheme). Nodes live in a preallocated arena linked intrusively by
// index; residency lookups go through a paged block→slot index. Accesses
// allocate nothing once the touched pages exist.
type shadowLRU struct {
	nodes      []shadowNode // arena; capacity = len(nodes)
	used       int32        // nodes handed out so far (grows to capacity, then recycles)
	head, tail int32        // MRU / LRU, -1 when empty
	slots      pagedSlots
}

type shadowNode struct {
	block      int64
	prev, next int32
}

func newShadowLRU(capacity int64) *shadowLRU {
	return &shadowLRU{nodes: make([]shadowNode, capacity), head: -1, tail: -1}
}

// resident reports whether block is in the directory, without touching
// recency.
func (s *shadowLRU) resident(block int64) bool { return s.slots.get(block) >= 0 }

// mruPrefixIs reports whether the directory's most-recent entries are
// exactly blocks[R-1], …, blocks[0] — the state one access pass over a
// duplicate-free blocks slice leaves behind. A replay pass from that
// state is a provable no-op (each access re-fronts a block the previous
// accesses just pushed down by exactly its distance), which lets
// TryAccessHitIters elide the pass entirely in steady spans. Groups
// with duplicate blocks simply fail the comparison — a list node cannot
// match two positions — and fall back to the real replay.
func (s *shadowLRU) mruPrefixIs(blocks []int64) bool {
	n := s.head
	for i := len(blocks) - 1; i >= 0; i-- {
		if n < 0 || s.nodes[n].block != blocks[i] {
			return false
		}
		n = s.nodes[n].next
	}
	return true
}

// access touches block, returns whether it was resident, and makes it MRU.
func (s *shadowLRU) access(block int64) bool {
	if n := s.slots.get(block); n >= 0 {
		if n != s.head {
			s.unlink(n)
			s.pushFront(n)
		}
		return true
	}
	var n int32
	if int(s.used) < len(s.nodes) {
		n = s.used
		s.used++
	} else {
		// Full: recycle the LRU tail.
		n = s.tail
		s.unlink(n)
		s.slots.set(s.nodes[n].block, -1)
	}
	s.nodes[n].block = block
	s.pushFront(n)
	s.slots.set(block, n)
	return false
}

func (s *shadowLRU) flush() {
	for n := s.head; n >= 0; n = s.nodes[n].next {
		s.slots.set(s.nodes[n].block, -1)
	}
	s.head, s.tail = -1, -1
	s.used = 0
}

func (s *shadowLRU) pushFront(n int32) {
	s.nodes[n].prev = -1
	s.nodes[n].next = s.head
	if s.head >= 0 {
		s.nodes[s.head].prev = n
	}
	s.head = n
	if s.tail < 0 {
		s.tail = n
	}
}

func (s *shadowLRU) unlink(n int32) {
	prev, next := s.nodes[n].prev, s.nodes[n].next
	if prev >= 0 {
		s.nodes[prev].next = next
	} else {
		s.head = next
	}
	if next >= 0 {
		s.nodes[next].prev = prev
	} else {
		s.tail = prev
	}
	s.nodes[n].prev, s.nodes[n].next = -1, -1
}

// Package cache models the per-core on-chip data caches of the simulated
// MPSoC: set-associative, with pluggable replacement, fixed geometry
// (Table 2 of the paper: 8KB, 2-way per core), and a miss classifier that
// separates conflict misses from capacity and cold misses — the quantity
// the paper's data-mapping phase (LSM) is designed to remove.
package cache

import (
	"fmt"
	"math/rand"
)

// Geometry describes a cache's shape.
type Geometry struct {
	Size      int64 // total bytes
	BlockSize int64 // line size in bytes
	Assoc     int   // ways per set
}

// Validate checks that the geometry is internally consistent.
func (g Geometry) Validate() error {
	if g.Size <= 0 || g.BlockSize <= 0 || g.Assoc <= 0 {
		return fmt.Errorf("cache: geometry fields must be positive: %+v", g)
	}
	if g.Size%(g.BlockSize*int64(g.Assoc)) != 0 {
		return fmt.Errorf("cache: size %d not divisible by block %d × assoc %d", g.Size, g.BlockSize, g.Assoc)
	}
	return nil
}

// NumSets returns the number of sets.
func (g Geometry) NumSets() int64 { return g.Size / (g.BlockSize * int64(g.Assoc)) }

// NumLines returns the total number of lines.
func (g Geometry) NumLines() int64 { return g.Size / g.BlockSize }

// PageSize returns the paper's "cache page": cache size / associativity,
// i.e. the address span after which set indices repeat.
func (g Geometry) PageSize() int64 { return g.Size / int64(g.Assoc) }

// BlockOf returns the block (line) number containing the address.
func (g Geometry) BlockOf(addr int64) int64 { return addr / g.BlockSize }

// SetOf returns the set index of the address.
func (g Geometry) SetOf(addr int64) int64 { return (addr / g.BlockSize) % g.NumSets() }

func (g Geometry) String() string {
	return fmt.Sprintf("%dKB %d-way %dB-blocks", g.Size/1024, g.Assoc, g.BlockSize)
}

// Replacement selects the victim policy within a set.
type Replacement int

const (
	// LRU evicts the least recently used line.
	LRU Replacement = iota
	// FIFO evicts the line resident longest.
	FIFO
	// RandomRepl evicts a pseudo-random line.
	RandomRepl
)

func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case RandomRepl:
		return "random"
	}
	return fmt.Sprintf("Replacement(%d)", int(r))
}

// MissClass classifies a miss.
type MissClass int

const (
	// Hit marks a cache hit (not a miss).
	Hit MissClass = iota
	// ColdMiss is the first-ever access to the block.
	ColdMiss
	// CapacityMiss would also have missed in a fully-associative cache of
	// equal capacity.
	CapacityMiss
	// ConflictMiss hits in the fully-associative shadow but missed in the
	// set-associative cache: limited associativity is to blame.
	ConflictMiss
)

func (m MissClass) String() string {
	switch m {
	case Hit:
		return "hit"
	case ColdMiss:
		return "cold"
	case CapacityMiss:
		return "capacity"
	case ConflictMiss:
		return "conflict"
	}
	return fmt.Sprintf("MissClass(%d)", int(m))
}

// Stats accumulates access counts.
type Stats struct {
	Accesses   int64
	Hits       int64
	Cold       int64
	Capacity   int64
	Conflict   int64
	Writebacks int64 // dirty evictions under WriteBack
}

// Misses returns the total miss count.
func (s Stats) Misses() int64 { return s.Cold + s.Capacity + s.Conflict }

// HitRate returns hits/accesses (0 for no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Cold += o.Cold
	s.Capacity += o.Capacity
	s.Conflict += o.Conflict
	s.Writebacks += o.Writebacks
}

type line struct {
	tag   int64
	valid bool
	dirty bool
	used  int64 // last-use tick (LRU) or fill tick (FIFO)
}

// WritePolicy selects how stores interact with memory.
type WritePolicy int

const (
	// WriteThrough sends every store to memory (the default; store cost
	// is charged by the machine model, not the cache).
	WriteThrough WritePolicy = iota
	// WriteBack marks lines dirty and pays for memory only when a dirty
	// line is evicted; Stats.Writebacks counts those evictions.
	WriteBack
)

func (w WritePolicy) String() string {
	if w == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// Cache is a set-associative cache with an optional fully-associative
// shadow directory for miss classification.
type Cache struct {
	geom   Geometry
	repl   Replacement
	sets   [][]line
	tick   int64
	stats  Stats
	rng    *rand.Rand
	shadow *shadowLRU
	seen   map[int64]bool          // blocks ever referenced, for cold-miss detection
	index  func(block int64) int64 // block → set mapping (see Indexing)
	write  WritePolicy
}

// Option configures a Cache.
type Option func(*Cache)

// WithReplacement selects the replacement policy (default LRU).
func WithReplacement(r Replacement) Option {
	return func(c *Cache) { c.repl = r }
}

// WithClassification enables conflict/capacity/cold miss classification
// via a fully-associative LRU shadow of equal capacity. Costs extra time
// and memory per access.
func WithClassification() Option {
	return func(c *Cache) {
		c.shadow = newShadowLRU(c.geom.NumLines())
		c.seen = make(map[int64]bool)
	}
}

// WithSeed seeds the RandomRepl policy (default seed 1).
func WithSeed(seed int64) Option {
	return func(c *Cache) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithWritePolicy selects the store policy (default WriteThrough).
func WithWritePolicy(w WritePolicy) Option {
	return func(c *Cache) { c.write = w }
}

// New builds a cache with the given geometry.
func New(geom Geometry, opts ...Option) (*Cache, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	numSets := geom.NumSets()
	c := &Cache{
		geom:  geom,
		repl:  LRU,
		sets:  make([][]line, numSets),
		rng:   rand.New(rand.NewSource(1)),
		index: ModuloIndexing.indexFunc(numSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, geom.Assoc)
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(geom Geometry, opts ...Option) *Cache {
	c, err := New(geom, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Geometry returns the cache's shape.
func (c *Cache) Geometry() Geometry { return c.geom }

// Access simulates one read reference to addr; see AccessRW.
func (c *Cache) Access(addr int64) MissClass {
	class, _ := c.AccessRW(addr, false)
	return class
}

// AccessRW simulates one reference to addr and returns its classification
// (Hit, or the miss class; without WithClassification every miss reports
// ColdMiss on first touch of a block and CapacityMiss otherwise).
// wroteBack reports that the fill evicted a dirty line (WriteBack only).
func (c *Cache) AccessRW(addr int64, write bool) (class MissClass, wroteBack bool) {
	c.tick++
	c.stats.Accesses++
	block := c.geom.BlockOf(addr)
	set := c.sets[c.index(block)]

	shadowHit := false
	if c.shadow != nil {
		shadowHit = c.shadow.access(block)
	}

	for i := range set {
		if set[i].valid && set[i].tag == block {
			if c.repl == LRU {
				set[i].used = c.tick
			}
			if write && c.write == WriteBack {
				set[i].dirty = true
			}
			c.stats.Hits++
			return Hit, false
		}
	}

	// Miss: pick a victim and fill.
	victim := 0
	switch c.repl {
	case LRU, FIFO:
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
			if set[i].used < set[victim].used {
				victim = i
			}
		}
	case RandomRepl:
		victim = -1
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
		}
		if victim < 0 {
			victim = c.rng.Intn(len(set))
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
		wroteBack = true
	}
	set[victim] = line{
		tag:   block,
		valid: true,
		used:  c.tick,
		dirty: write && c.write == WriteBack,
	}

	// Without WithClassification every miss is reported as capacity; with
	// it, first-touch misses are cold and shadow hits are conflicts.
	class = CapacityMiss
	if c.shadow != nil {
		switch {
		case !c.seen[block]:
			class = ColdMiss
		case shadowHit:
			class = ConflictMiss
		}
		c.seen[block] = true
	}
	switch class {
	case ColdMiss:
		c.stats.Cold++
	case ConflictMiss:
		c.stats.Conflict++
	default:
		c.stats.Capacity++
	}
	return class, wroteBack
}

// Contains reports whether the block holding addr is resident (without
// touching stats or recency).
func (c *Cache) Contains(addr int64) bool {
	block := c.geom.BlockOf(addr)
	set := c.sets[c.index(block)]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// Flush invalidates every line, counting dirty lines as writebacks
// (shadow state and the cold-miss directory are preserved: flushing does
// not make data "never seen").
func (c *Cache) Flush() {
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid && c.sets[s][i].dirty {
				c.stats.Writebacks++
			}
			c.sets[s][i] = line{}
		}
	}
	if c.shadow != nil {
		c.shadow.flush()
	}
}

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters, keeping cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// shadowLRU is a fully-associative LRU directory of block numbers used to
// classify conflict vs. capacity misses (Hill & Smith's classical scheme).
type shadowLRU struct {
	capacity int64
	nodes    map[int64]*shadowNode
	head     *shadowNode // most recent
	tail     *shadowNode // least recent
}

type shadowNode struct {
	block      int64
	prev, next *shadowNode
}

func newShadowLRU(capacity int64) *shadowLRU {
	return &shadowLRU{capacity: capacity, nodes: make(map[int64]*shadowNode)}
}

// access touches block, returns whether it was resident, and makes it MRU.
func (s *shadowLRU) access(block int64) bool {
	if n, ok := s.nodes[block]; ok {
		s.unlink(n)
		s.pushFront(n)
		return true
	}
	n := &shadowNode{block: block}
	s.nodes[block] = n
	s.pushFront(n)
	if int64(len(s.nodes)) > s.capacity {
		evict := s.tail
		s.unlink(evict)
		delete(s.nodes, evict.block)
	}
	return false
}

func (s *shadowLRU) flush() {
	s.nodes = make(map[int64]*shadowNode)
	s.head, s.tail = nil, nil
}

func (s *shadowLRU) pushFront(n *shadowNode) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *shadowLRU) unlink(n *shadowNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

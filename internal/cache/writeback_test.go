package cache

import "testing"

func TestWriteThroughNeverDirties(t *testing.T) {
	c := MustNew(paperGeom) // default write-through
	c.AccessRW(0, true)
	c.AccessRW(4096, true)
	// Evict 0's line by filling its set.
	if _, wb := c.AccessRW(8192, true); wb {
		t.Error("write-through must never report writebacks")
	}
	if c.Stats().Writebacks != 0 {
		t.Errorf("Writebacks = %d, want 0", c.Stats().Writebacks)
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := MustNew(paperGeom, WithWritePolicy(WriteBack))
	// Dirty two lines of set 0, then evict one with a third block.
	c.AccessRW(0, true)
	c.AccessRW(4096, true)
	_, wb := c.AccessRW(8192, false)
	if !wb {
		t.Error("evicting a dirty line must report a writeback")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteBackCleanEvictionFree(t *testing.T) {
	c := MustNew(paperGeom, WithWritePolicy(WriteBack))
	// Reads only: evictions are clean.
	c.AccessRW(0, false)
	c.AccessRW(4096, false)
	if _, wb := c.AccessRW(8192, false); wb {
		t.Error("clean eviction must not report a writeback")
	}
	if c.Stats().Writebacks != 0 {
		t.Errorf("Writebacks = %d, want 0", c.Stats().Writebacks)
	}
}

func TestWriteBackHitDirtiesLine(t *testing.T) {
	c := MustNew(paperGeom, WithWritePolicy(WriteBack))
	c.AccessRW(0, false) // clean fill
	c.AccessRW(0, true)  // dirtying hit
	c.AccessRW(4096, false)
	if _, wb := c.AccessRW(8192, false); !wb {
		t.Error("the line dirtied by a write hit must write back on eviction")
	}
}

func TestFlushWritesBackDirtyLines(t *testing.T) {
	c := MustNew(paperGeom, WithWritePolicy(WriteBack))
	c.AccessRW(0, true)
	c.AccessRW(32, true) // same? no: block 1 — different line
	c.AccessRW(64, false)
	c.Flush()
	if got := c.Stats().Writebacks; got != 2 {
		t.Errorf("Flush writebacks = %d, want 2 (two dirty lines)", got)
	}
}

func TestWritePolicyString(t *testing.T) {
	if WriteThrough.String() == "" || WriteBack.String() == "" {
		t.Error("write policies should render")
	}
}

func TestStatsAddIncludesWritebacks(t *testing.T) {
	a := Stats{Writebacks: 3}
	a.Add(Stats{Writebacks: 4})
	if a.Writebacks != 7 {
		t.Errorf("Writebacks = %d, want 7", a.Writebacks)
	}
}

package cache

import (
	"math/rand"
	"reflect"
	"testing"
)

// runsTestOptions are the cache variants the batched entry points are
// differentially checked under.
func runsTestOptions() map[string][]Option {
	return map[string][]Option{
		"plain":           nil,
		"classified":      {WithClassification()},
		"classified-fifo": {WithClassification(), WithReplacement(FIFO)},
		"writeback":       {WithClassification(), WithWritePolicy(WriteBack)},
	}
}

// drain compares two caches by observable behaviour: a deterministic
// probe stream must classify identically (the probe stresses evictions,
// so diverging recency or shadow state surfaces as a different class).
func drain(t *testing.T, name string, a, b *Cache) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		addr := int64(rng.Intn(1 << 16))
		write := rng.Intn(4) == 0
		ca, wa := a.AccessRW(addr, write)
		cb, wb := b.AccessRW(addr, write)
		if ca != cb || wa != wb {
			t.Fatalf("%s: probe %d (addr %d): bulk cache says (%v,%v), per-access says (%v,%v)",
				name, i, addr, ca, wa, cb, wb)
		}
	}
	if !reflect.DeepEqual(a.Stats(), b.Stats()) {
		t.Fatalf("%s: stats diverge after probe: bulk %+v, per-access %+v", name, a.Stats(), b.Stats())
	}
}

// TestAccessRunMatchesPerAccess: AccessRun(addr, n, w) is
// indistinguishable — stats and subsequent behaviour — from n AccessRW
// calls within the same block.
func TestAccessRunMatchesPerAccess(t *testing.T) {
	geom := Geometry{Size: 1 << 10, BlockSize: 32, Assoc: 2}
	for name, opts := range runsTestOptions() {
		t.Run(name, func(t *testing.T) {
			bulk := MustNew(geom, opts...)
			ref := MustNew(geom, opts...)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 3000; i++ {
				base := int64(rng.Intn(1<<14)) &^ 31 // block-aligned
				stride := int64(rng.Intn(3) + 1)
				count := int64(rng.Intn(int(32/stride)) + 1) // stays in block
				write := rng.Intn(3) == 0
				ca, wa := bulk.AccessRun(base, count, write)
				var cb MissClass
				var wb bool
				for k := int64(0); k < count; k++ {
					ck, wk := ref.AccessRW(base+k*stride, write)
					if k == 0 {
						cb, wb = ck, wk
					} else if ck != Hit || wk {
						t.Fatalf("run access %d not a clean hit: %v %v", k, ck, wk)
					}
				}
				if ca != cb || wa != wb {
					t.Fatalf("run %d: AccessRun (%v,%v) != per-access (%v,%v)", i, ca, wa, cb, wb)
				}
			}
			drain(t, name, bulk, ref)
		})
	}
}

// TestTryAccessHitItersMatchesPerAccess: a successful fast-forward is
// indistinguishable from per-access replay of the same iterations, under
// random interleaved traffic, mixed residency (forcing refusals), and
// duplicate blocks within a group.
func TestTryAccessHitItersMatchesPerAccess(t *testing.T) {
	geom := Geometry{Size: 1 << 10, BlockSize: 32, Assoc: 2}
	for name, opts := range runsTestOptions() {
		t.Run(name, func(t *testing.T) {
			bulk := MustNew(geom, opts...)
			ref := MustNew(geom, opts...)
			rng := rand.New(rand.NewSource(11))
			var refused, applied int
			for i := 0; i < 3000; i++ {
				// Random interleaved traffic.
				for k := rng.Intn(6); k > 0; k-- {
					addr := int64(rng.Intn(1 << 14))
					w := rng.Intn(4) == 0
					bulk.AccessRW(addr, w)
					ref.AccessRW(addr, w)
				}
				// A reference group: some blocks touched (likely resident),
				// sometimes a cold one (forcing refusal), sometimes a
				// duplicate.
				r := rng.Intn(4) + 1
				blocks := make([]int64, r)
				writes := make([]bool, r)
				for j := range blocks {
					b := int64(rng.Intn(1 << 9))
					if rng.Intn(3) > 0 {
						// Touch it so it's resident on both caches.
						bulk.AccessRW(b*32, false)
						ref.AccessRW(b*32, false)
					}
					if j > 0 && rng.Intn(5) == 0 {
						b = blocks[j-1]
					}
					blocks[j] = b
					writes[j] = rng.Intn(3) == 0
				}
				iters := int64(rng.Intn(12) + 1)
				ok := bulk.TryAccessHitIters(blocks, writes, iters)
				if ok {
					applied++
					for it := int64(0); it < iters; it++ {
						for j := range blocks {
							if c, _ := ref.AccessRW(blocks[j]*32, writes[j]); c != Hit {
								t.Fatalf("iteration %d ref %d: per-access replay missed (%v) where bulk fast-forwarded", it, j, c)
							}
						}
					}
				} else {
					refused++
				}
			}
			if applied == 0 || refused == 0 {
				t.Fatalf("degenerate coverage: %d applied, %d refused", applied, refused)
			}
			drain(t, name, bulk, ref)
		})
	}
}

// TestTryAccessHitItersRefusalUntouched: a refused fast-forward leaves
// every counter and all cache state alone.
func TestTryAccessHitItersRefusalUntouched(t *testing.T) {
	c := MustNew(Geometry{Size: 1 << 10, BlockSize: 32, Assoc: 2}, WithClassification())
	c.AccessRW(0, false)
	before := c.Stats()
	if c.TryAccessHitIters([]int64{999}, []bool{false}, 5) {
		t.Fatal("fast-forward of a non-resident block succeeded")
	}
	if c.Stats() != before {
		t.Fatalf("refusal mutated stats: %+v -> %+v", before, c.Stats())
	}
	if !c.Contains(0) {
		t.Fatal("refusal disturbed cache contents")
	}
}

// TestBatchedEntryPointsZeroAlloc: the batched paths stay allocation-free
// in steady state, like AccessRW.
func TestBatchedEntryPointsZeroAlloc(t *testing.T) {
	c := MustNew(benchGeom(), WithClassification())
	warm(c, 64<<10)
	blocks := []int64{0, 64, 128}
	writes := []bool{false, true, false}
	for _, b := range blocks {
		c.AccessRW(b*32, false)
	}
	allocs := testing.AllocsPerRun(10000, func() {
		c.AccessRun(0, 8, false)
		if !c.TryAccessHitIters(blocks, writes, 4) {
			t.Fatal("group not resident")
		}
	})
	if allocs != 0 {
		t.Errorf("batched entry points allocate %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkAccessRun measures resolving an 8-access same-block run in
// one call (the per-block cost of the coalesced engine), against the
// 8×AccessRW equivalent in BenchmarkCacheAccess*.
func BenchmarkAccessRun(b *testing.B) {
	c := MustNew(benchGeom(), WithClassification())
	const span = 64 << 10
	warm(c, span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AccessRun(int64(i)*32%span, 8, false)
	}
	b.ReportMetric(8, "accesses/op")
}

// BenchmarkAccessHitIters measures fast-forwarding 8 iterations of a
// 3-reference group (24 accesses) in one call.
func BenchmarkAccessHitIters(b *testing.B) {
	c := MustNew(benchGeom(), WithClassification())
	warm(c, 64<<10)
	blocks := []int64{0, 64, 128}
	writes := []bool{false, true, false}
	for _, blk := range blocks {
		c.AccessRW(blk*32, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.TryAccessHitIters(blocks, writes, 8) {
			b.Fatal("group not resident")
		}
	}
	b.ReportMetric(24, "accesses/op")
}

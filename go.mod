module locsched

go 1.24
